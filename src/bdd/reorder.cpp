#include "bdd/reorder.hpp"

#include <algorithm>
#include <numeric>

#include "obs/obs.hpp"
#include "util/check.hpp"
#include "util/governor.hpp"

namespace polis::bdd {

namespace {

// Mirrors a finished sift run into the process-wide metrics registry.
// Called once per `sift` invocation (cheap: a handful of shard adds), so the
// per-swap hot path carries no observability cost at all.
void publish_sift_telemetry(const SiftTelemetry& tel) {
  struct Ids {
    obs::MetricsRegistry& reg = obs::MetricsRegistry::global();
    obs::MetricsRegistry::Id runs = reg.counter("sift.runs");
    obs::MetricsRegistry::Id swaps = reg.counter("sift.swaps");
    obs::MetricsRegistry::Id evals = reg.counter("sift.size_evaluations");
    obs::MetricsRegistry::Id passes = reg.counter("sift.passes_run");
    obs::MetricsRegistry::Id gcs = reg.counter("sift.garbage_collections");
    obs::MetricsRegistry::Id saved = reg.counter("sift.nodes_saved");
    obs::MetricsRegistry::Id peak = reg.max_gauge("sift.peak_arena");
    obs::MetricsRegistry::Id shrink = reg.histogram("sift.run_shrink_nodes");
    obs::MetricsRegistry::Id stopped = reg.counter("sift.stopped_early");
  };
  static const Ids ids;
  obs::MetricsRegistry& reg = ids.reg;
  reg.add(ids.runs, 1);
  if (tel.stopped_early) reg.add(ids.stopped, 1);
  reg.add(ids.swaps, tel.swaps);
  reg.add(ids.evals, tel.size_evaluations);
  reg.add(ids.passes, static_cast<std::uint64_t>(tel.passes_run));
  reg.add(ids.gcs, static_cast<std::uint64_t>(tel.garbage_collections));
  const std::uint64_t shrunk =
      tel.initial_size > tel.final_size ? tel.initial_size - tel.final_size : 0;
  reg.add(ids.saved, shrunk);
  reg.set(ids.peak, static_cast<std::int64_t>(tel.peak_arena));
  reg.observe(ids.shrink, shrunk);
}

// Legal insertion window [lo, hi] (inclusive, as positions in `order` with
// `var` removed) given the precedence pairs. Used by the rebuild reference.
std::pair<size_t, size_t> legal_window(
    const std::vector<int>& order_without_var, int var,
    const std::vector<std::pair<int, int>>& precedence) {
  size_t lo = 0;
  size_t hi = order_without_var.size();
  for (const auto& [above, below] : precedence) {
    if (below == var) {
      // `above` must stay above var: insertion position must be after it.
      for (size_t i = 0; i < order_without_var.size(); ++i) {
        if (order_without_var[i] == above) {
          lo = std::max(lo, i + 1);
          break;
        }
      }
    }
    if (above == var) {
      // `below` must stay below var: insertion position must be at/before it.
      for (size_t i = 0; i < order_without_var.size(); ++i) {
        if (order_without_var[i] == below) {
          hi = std::min(hi, i);
          break;
        }
      }
    }
  }
  return {lo, hi};
}

void check_precedence(int num_vars,
                      const std::vector<std::pair<int, int>>& precedence) {
  for (const auto& [above, below] : precedence) {
    POLIS_CHECK_MSG(above >= 0 && above < num_vars && below >= 0 &&
                        below < num_vars,
                    "precedence pair (" << above << ", " << below
                                        << ") mentions an unknown variable");
  }
  // Kahn's algorithm: cyclic constraints (including self-pairs) admit no
  // legal order at all, so fail loudly instead of sifting into a corner.
  std::vector<std::vector<int>> adj(static_cast<size_t>(num_vars));
  std::vector<int> indeg(static_cast<size_t>(num_vars), 0);
  for (const auto& [above, below] : precedence) {
    adj[static_cast<size_t>(above)].push_back(below);
    indeg[static_cast<size_t>(below)]++;
  }
  std::vector<int> queue;
  for (int v = 0; v < num_vars; ++v)
    if (indeg[static_cast<size_t>(v)] == 0) queue.push_back(v);
  int ordered = 0;
  while (!queue.empty()) {
    const int v = queue.back();
    queue.pop_back();
    ++ordered;
    for (int w : adj[static_cast<size_t>(v)])
      if (--indeg[static_cast<size_t>(w)] == 0) queue.push_back(w);
  }
  POLIS_CHECK_MSG(ordered == num_vars,
                  "precedence constraints are cyclic: no legal order exists");
}

// Variables to sift this pass, fattest level first (the classic heuristic:
// the fattest level has the most to gain). Variables with no live nodes are
// dropped: no order can give them any, so sifting them cannot improve size.
std::vector<int> sift_candidates(BddManager& mgr, const SiftOptions& options) {
  const std::vector<size_t> profile = mgr.var_node_profile();
  std::vector<int> vars;
  vars.reserve(profile.size());
  for (size_t v = 0; v < profile.size(); ++v)
    if (profile[v] > 0) vars.push_back(static_cast<int>(v));
  std::stable_sort(vars.begin(), vars.end(), [&](int a, int b) {
    return profile[static_cast<size_t>(a)] > profile[static_cast<size_t>(b)];
  });
  if (options.max_vars > 0 && static_cast<int>(vars.size()) > options.max_vars)
    vars.resize(static_cast<size_t>(options.max_vars));
  return vars;
}

}  // namespace

bool order_respects(const std::vector<int>& order,
                    const std::vector<std::pair<int, int>>& precedence) {
  std::vector<int> pos(order.size());
  for (size_t i = 0; i < order.size(); ++i)
    pos[static_cast<size_t>(order[i])] = static_cast<int>(i);
  for (const auto& [above, below] : precedence) {
    if (pos[static_cast<size_t>(above)] >= pos[static_cast<size_t>(below)])
      return false;
  }
  return true;
}

size_t sift(BddManager& mgr,
            const std::vector<std::pair<int, int>>& precedence,
            const SiftOptions& options) {
  const int n = mgr.num_vars();
  check_precedence(n, precedence);

  OBS_SPAN(sift_span, "bdd.sift", "reorder");

  SiftTelemetry local;
  SiftTelemetry& tel = options.telemetry ? *options.telemetry : local;
  tel = SiftTelemetry{};

  auto measure = [&]() -> size_t {
    ++tel.size_evaluations;
    tel.peak_arena = std::max(tel.peak_arena, mgr.arena_size());
    const size_t live = mgr.live_node_count();
    if (options.verify_with_oracle) {
      POLIS_CHECK_MSG(live == mgr.size_under_order(mgr.current_order()),
                      "fast sift size diverged from the rebuild oracle");
    }
    return live;
  };

  size_t current = measure();
  tel.initial_size = current;
  tel.final_size = current;
  if (n <= 1) {
    publish_sift_telemetry(tel);
    return current;
  }

  POLIS_CHECK_MSG(order_respects(mgr.current_order(), precedence),
                  "initial order violates the precedence constraints");

  // blocks_down[v][w]: v may not move below w; blocks_up[v][u]: v may not
  // move above u.
  std::vector<std::vector<char>> blocks_down(
      static_cast<size_t>(n), std::vector<char>(static_cast<size_t>(n), 0));
  std::vector<std::vector<char>> blocks_up(
      static_cast<size_t>(n), std::vector<char>(static_cast<size_t>(n), 0));
  for (const auto& [above, below] : precedence) {
    blocks_down[static_cast<size_t>(above)][static_cast<size_t>(below)] = 1;
    blocks_up[static_cast<size_t>(below)][static_cast<size_t>(above)] = 1;
  }

  // Sifting is an anytime optimization: when the ambient governor's
  // deadline, node budget or cancel flag trips, the current candidate still
  // settles to its best position (swaps run under their own governor
  // suspension, so settling cannot throw) and the sift returns the best
  // order found so far. Callers in --on-budget=fail mode fail at their next
  // poll; in degrade mode this IS the degraded result.
  ResourceGovernor* const gov = ResourceGovernor::current();
  const auto over_budget = [gov]() {
    return gov != nullptr && gov->should_stop();
  };
  bool stopped = false;

  for (int pass = 0; pass < options.passes && !stopped; ++pass) {
    bool improved_this_pass = false;
    for (int v : sift_candidates(mgr, options)) {
      OBS_SPAN(var_span, "sift.var", "reorder");
      if (var_span.armed()) var_span.arg("var", v);
      // Swaps leave orphaned nodes behind, still threaded on the unique
      // table where later swaps would keep rewriting them; prune once the
      // garbage dominates the live size, so a swap's cost stays
      // proportional to the nodes actually on its levels. (The arena itself
      // barely grows — freed slots are recycled — so table occupancy, not
      // arena size, is the signal.)
      if (mgr.table_node_count() > std::max<size_t>(128, 3 * current)) {
        mgr.prune_dead_nodes();
        ++tel.garbage_collections;
      }
      // Pruning leaves dead slots allocated; compact outright if the arena
      // has grown far beyond the live size.
      if (mgr.arena_size() > std::max<size_t>(size_t{1} << 16, 64 * current)) {
        mgr.garbage_collect();
        ++tel.garbage_collections;
      }

      const int start = mgr.level_of(v);
      size_t best_size = current;
      int best_level = start;
      int level = start;
      size_t here = current;  // live size at v's current position

      // A swap that rewrites no nodes cannot change the live size (the two
      // levels do not interact), so the previous measurement stands.
      const auto size_after_swap = [&](size_t rewritten) -> size_t {
        if (rewritten == 0 && !options.verify_with_oracle) return here;
        return measure();
      };

      // Walk down to the bottom of the legal window, measuring each stop.
      while (!over_budget() && level + 1 < n &&
             !blocks_down[static_cast<size_t>(v)]
                         [static_cast<size_t>(mgr.var_at_level(level + 1))]) {
        tel.swaps += 1;
        here = size_after_swap(mgr.swap_adjacent_levels(level));
        ++level;
        if (here < best_size) {
          best_size = here;
          best_level = level;
        }
      }
      // Walk back up to the top of the window. `<=` so that among equal
      // minima the topmost position wins, like the rebuild reference.
      while (!over_budget() && level > 0 &&
             !blocks_up[static_cast<size_t>(v)]
                       [static_cast<size_t>(mgr.var_at_level(level - 1))]) {
        tel.swaps += 1;
        here = size_after_swap(mgr.swap_adjacent_levels(level - 1));
        --level;
        if (here <= best_size) {
          best_size = here;
          best_level = level;
        }
      }

      // Settle: move to the best position, or back to the start if nothing
      // strictly improved.
      const int target = best_size < current ? best_level : start;
      while (level < target) {
        tel.swaps += 1;
        mgr.swap_adjacent_levels(level);
        ++level;
      }
      while (level > target) {
        tel.swaps += 1;
        mgr.swap_adjacent_levels(level - 1);
        --level;
      }
      if (var_span.armed()) {
        var_span.arg("start_level", start);
        var_span.arg("settled_level", target);
        var_span.arg("size_after", best_size < current ? best_size : current);
      }
      if (best_size < current) {
        current = best_size;
        improved_this_pass = true;
      }
      if (over_budget()) {
        // The candidate above has already settled to its best position;
        // stop visiting further candidates and keep the order as-is.
        stopped = true;
        tel.stopped_early = true;
        gov->note_degradation("sift stopped early on budget/deadline");
        break;
      }
    }
    ++tel.passes_run;
    tel.pass_sizes.push_back(current);
    if (!improved_this_pass) break;
  }

  tel.final_size = current;
  if (sift_span.armed()) {
    sift_span.arg("initial_size", tel.initial_size);
    sift_span.arg("final_size", tel.final_size);
    sift_span.arg("swaps", tel.swaps);
    sift_span.arg("passes", tel.passes_run);
  }
  publish_sift_telemetry(tel);
  return current;
}

size_t sift(BddManager& mgr, const SiftOptions& options) {
  return sift(mgr, {}, options);
}

size_t sift_by_rebuild(BddManager& mgr,
                       const std::vector<std::pair<int, int>>& precedence,
                       const SiftOptions& options) {
  const int n = mgr.num_vars();
  check_precedence(n, precedence);
  if (n <= 1) return mgr.size_under_order(mgr.current_order());

  POLIS_CHECK_MSG(order_respects(mgr.current_order(), precedence),
                  "initial order violates the precedence constraints");

  size_t best_total = mgr.size_under_order(mgr.current_order());

  for (int pass = 0; pass < options.passes; ++pass) {
    bool improved_this_pass = false;
    for (int v : sift_candidates(mgr, options)) {
      std::vector<int> order = mgr.current_order();
      std::vector<int> without;
      without.reserve(order.size() - 1);
      for (size_t i = 0; i < order.size(); ++i) {
        if (order[i] != v) without.push_back(order[i]);
      }

      const auto [lo, hi] = legal_window(without, v, precedence);
      POLIS_CHECK_MSG(lo <= hi, "empty legal window for variable "
                                    << v << ": contradictory precedence");
      size_t best_size = best_total;
      size_t best_pos = lo;
      bool have_best = false;
      for (size_t p = lo; p <= hi; ++p) {
        std::vector<int> candidate = without;
        candidate.insert(candidate.begin() + static_cast<std::ptrdiff_t>(p), v);
        const size_t sz = mgr.size_under_order(candidate);
        if (!have_best || sz < best_size) {
          best_size = sz;
          best_pos = p;
          have_best = true;
        }
      }

      std::vector<int> final_order = without;
      final_order.insert(
          final_order.begin() + static_cast<std::ptrdiff_t>(best_pos), v);
      if (final_order != order && best_size < best_total) {
        mgr.set_order(final_order);
        best_total = best_size;
        improved_this_pass = true;
      }
    }
    if (!improved_this_pass) break;
  }
  return best_total;
}

}  // namespace polis::bdd
