// The top-level synthesis pipeline (§I-H): CFSM → characteristic function →
// optimized s-graph → C code + VM binary + cost/performance estimates.
// This is the "software synthesis system generating C code from FSM
// specifications" the paper describes, packaged as one call.
#pragma once

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "bdd/bdd.hpp"
#include "cfsm/cfsm.hpp"
#include "cfsm/network.hpp"
#include "cfsm/reactive.hpp"
#include "codegen/c_codegen.hpp"
#include "estim/calibrate.hpp"
#include "estim/estimate.hpp"
#include "sgraph/build.hpp"
#include "util/governor.hpp"
#include "vm/compile.hpp"
#include "vm/isa.hpp"

namespace polis {

struct SynthesisOptions {
  sgraph::OrderingScheme scheme =
      sgraph::OrderingScheme::kSiftOutputsAfterSupport;
  sgraph::BuildOptions build;
  vm::TargetProfile target = vm::hc11_like();
  /// §V-B data-flow optimization: buffer only state variables with a
  /// write-before-read hazard.
  bool optimize_copy_in = false;
  /// Reuse a pre-calibrated cost model (calibration is deterministic but
  /// not free); when null, one is calibrated for `target`.
  const estim::CostModel* cost_model = nullptr;
  /// Worker threads for `synthesize_network`. Each distinct machine owns an
  /// independent BddManager, so per-machine synthesis is share-nothing and
  /// the parallel path is byte-identical to the serial one. 0 = one thread
  /// per hardware core; 1 = serial.
  int num_threads = 0;
  /// Global (network-level) care filters keyed by *machine* name, typically
  /// from verif::care_filters_by_machine. `synthesize_network` installs the
  /// matching filter as `build.care_filter` for each machine it synthesizes;
  /// machines without an entry keep the shared `build.care_filter` (usually
  /// none). Filters must be thread-safe — they run on the worker threads.
  std::map<std::string, cfsm::CareFilter> care_filter_by_machine;
  /// Reaction to an ambient ResourceGovernor budget trip. kFail unwinds the
  /// run with the recoverable error; kDegrade walks the ladder: the χ/s-graph
  /// stages retry ungoverned after GC, the estimator is skipped, and compile/
  /// codegen always complete from whatever order is current. Cancellation
  /// always propagates. Implies `build.degrade_on_budget`.
  OnBudget on_budget = OnBudget::kFail;
};

struct SynthesisResult {
  std::shared_ptr<const cfsm::Cfsm> machine;
  std::shared_ptr<bdd::BddManager> manager;
  std::shared_ptr<cfsm::ReactiveFunction> reactive;
  std::shared_ptr<sgraph::Sgraph> graph;
  std::shared_ptr<vm::CompiledReaction> compiled;
  std::string c_code;
  estim::Estimate estimate;   // size + min/max cycles under the cost model
  long long vm_size_bytes = 0;  // measured code size on the VM target
  double synthesis_seconds = 0;
  /// Degradation ladder rungs taken for this machine (empty on a clean run).
  std::vector<std::string> degradations;
  /// True when the estimator was skipped on budget (kDegrade only); the
  /// estimate fields are then defaulted and max_cycles is not meaningful.
  bool estimate_skipped = false;
};

/// Runs the full flow for one CFSM.
SynthesisResult synthesize(std::shared_ptr<const cfsm::Cfsm> machine,
                           const SynthesisOptions& options = {});

/// The per-CFSM flow applied to every instance of a network, with the cost
/// model calibrated once and shared. `max_cycles` is the per-instance WCET
/// the estimator derives (PERT max path, §III-C1) — the input both to the
/// §I-H step-4 schedulability tests (sched::) and to the RTOS robustness
/// layer's latency cross-check (estim::network_latency_bounds +
/// rtos::sweep_faults). Instances sharing one machine are synthesized once.
struct NetworkSynthesis {
  std::map<std::string, SynthesisResult> per_instance;  // by instance name
  std::map<std::string, long long> max_cycles;          // estimator WCET
};

NetworkSynthesis synthesize_network(const cfsm::Network& network,
                                    const SynthesisOptions& options = {});

}  // namespace polis
