// The example systems of the paper's evaluation (§V), reconstructed from
// the paper's description in the RSL frontend language:
//
//   * the car dashboard controller (§V-A): the computational chain from the
//     wheel and engine speed sensors to the PWM outputs controlling the
//     gauges, plus the classic seat-belt alarm CFSM;
//   * the shock absorber controller (§V-B): sampling, control law,
//     slew-limited actuator and a watchdog.
//
// The sources are exposed so the examples can print them; parsed forms are
// cached builders.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "cfsm/network.hpp"
#include "frontend/parser.hpp"

namespace polis::systems {

/// RSL source of the dashboard system (modules + `dash` network + the
/// composable `dash_core` sub-network used for the single-FSM baseline).
const char* dashboard_source();

/// RSL source of the shock absorber system (modules + `shock` network).
const char* shock_absorber_source();

frontend::ParsedFile dashboard();
frontend::ParsedFile shock_absorber();

/// Dashboard modules in the stable row order used by the benches
/// (Table I / Table II rows).
std::vector<std::shared_ptr<const cfsm::Cfsm>> dashboard_modules();

std::shared_ptr<cfsm::Network> dash_network();
std::shared_ptr<cfsm::Network> dash_core_network();
std::shared_ptr<cfsm::Network> shock_network();
std::vector<std::shared_ptr<const cfsm::Cfsm>> shock_modules();

/// RSL source of the level-meter system: a quantizer that only ever emits
/// levels 0..3 into an int[8] net feeding a bar display. The display's
/// overload branch (`value(level) >= 4`) is locally reachable but globally
/// dead — the showcase for symbolic reachability proving an assertion the
/// per-CFSM analysis cannot, and for the reached-set care filter shrinking
/// the display's s-graph.
const char* level_meter_source();
frontend::ParsedFile level_meter();
std::shared_ptr<cfsm::Network> meter_network();
std::vector<std::shared_ptr<const cfsm::Cfsm>> meter_modules();

/// RSL source of a third control-dominated system from the paper's
/// motivating domain (§I-A "from microwave ovens and watches to
/// telecommunication"): a microwave oven controller — keypad, cooking
/// controller with door interlock, magnetron driver and beeper.
const char* microwave_source();
frontend::ParsedFile microwave();
std::shared_ptr<cfsm::Network> microwave_network();
std::vector<std::shared_ptr<const cfsm::Cfsm>> microwave_modules();

/// RSL source of a generated `channels`-channel dashboard: `channels`
/// independent wheel-speed chains (debounce → pulse counter → speedometer)
/// sharing one sampling timer, as network `dash_gen`. The state space grows
/// multiplicatively per channel while the cluster count grows linearly
/// (4 per channel + the timer), which makes the family the scaling axis for
/// the parallel-verification benchmarks (`bench_verif`) and the
/// `tools/gen_dash` generator. Requires `channels` >= 1.
std::string generated_dash_source(int channels);
/// Parsed `dash_gen` network of `generated_dash_source(channels)`.
std::shared_ptr<cfsm::Network> generated_dash_network(int channels);

}  // namespace polis::systems
