#include "core/systems.hpp"

#include "util/check.hpp"

namespace polis::systems {

const char* dashboard_source() {
  return R"rsl(
# --- Car dashboard controller (paper §V-A) -----------------------------------
# Chain: wheel/engine pulse sensors -> debouncing -> windowed pulse counting
# -> gauge drivers (PWM outputs) and odometer, plus the seat-belt alarm.

module debounce {
  input raw;                 # raw sensor pulse
  input tick;                # sampling timer
  output clean;              # debounced pulse
  state cnt : int[4] = 0;

  when present(raw) && cnt < 2  -> { cnt := cnt + 1; }
  when present(raw) && cnt >= 2 -> { emit clean; cnt := 3; }
  when !present(raw) && present(tick) -> { cnt := 0; }
}

module pulse_counter {
  input pulse;               # debounced pulse
  input tick;                # window timer
  output count : int[8];     # pulses in the closed window
  state n : int[8] = 0;

  when present(tick)                   -> { emit count(n); n := 0; }
  when present(pulse) && !present(tick) -> { n := n + 1; }
}

module speedometer {
  input count : int[8];
  output pwm : int[16];      # gauge duty cycle
  state last : int[8] = 0;

  when present(count) && value(count) != last ->
    { last := value(count); emit pwm(value(count) * 2); }
  when present(count) && value(count) == last -> { }
}

module odometer {
  input count : int[8];
  output odo_inc;            # one emitted per 16 accumulated pulses
  state acc : int[16] = 0;

  when present(count) && acc + value(count) >= 16 ->
    { acc := acc + value(count) - 16; emit odo_inc; }
  when present(count) && acc + value(count) < 16 ->
    { acc := acc + value(count); }
}

module tachometer {
  input rpm : int[8];
  output tach_pwm : int[16];
  state peak : int[8] = 0;

  when present(rpm) && value(rpm) > peak ->
    { peak := value(rpm); emit tach_pwm(value(rpm) * 2 + 1); }
  when present(rpm) && value(rpm) <= peak ->
    { emit tach_pwm(value(rpm) + peak); }
}

module belt {
  input key_on;
  input belt_on;
  input tick;
  output alarm;
  state st : int[3] = 0;     # 0 idle, 1 waiting for the belt, 2 alarmed
  state cnt : int[4] = 0;

  assert st != 2 || cnt >= 3;   # the alarm only ever latches off a full count

  when present(key_on)                        -> { st := 1; cnt := 0; }
  when st == 1 && present(belt_on)            -> { st := 0; }
  when st == 1 && present(tick) && cnt < 3    -> { cnt := cnt + 1; }
  when st == 1 && present(tick) && cnt >= 3   -> { st := 2; emit alarm; }
}

network dash {
  instance deb  : debounce      (raw = wheel_raw, tick = timer, clean = wheel_clean);
  instance wcnt : pulse_counter (pulse = wheel_clean, tick = timer, count = wheel_count);
  instance spd  : speedometer   (count = wheel_count, pwm = speed_pwm);
  instance odo  : odometer      (count = wheel_count);
  instance ecnt : pulse_counter (pulse = engine_raw, tick = timer, count = engine_count);
  instance tach : tachometer    (rpm = engine_count, tach_pwm = rpm_pwm);
  instance blt  : belt          (key_on = key_on, belt_on = belt_on, tick = timer);
}

# Composable subset for the single-FSM baseline (Table III): the wheel-speed
# chain only, to keep the explicit product state space tractable.
network dash_core {
  instance deb  : debounce      (raw = wheel_raw, tick = timer, clean = wheel_clean);
  instance wcnt : pulse_counter (pulse = wheel_clean, tick = timer, count = wheel_count);
  instance spd  : speedometer   (count = wheel_count, pwm = speed_pwm);
}
)rsl";
}

const char* shock_absorber_source() {
  return R"rsl(
# --- Shock absorber controller (paper §V-B) -----------------------------------
# Acceleration sampling -> control law (comfort/sport) -> slew-limited valve
# actuator, with a sample watchdog.

module sampler {
  input accel : int[16];     # acceleration sensor
  input tick;                # control period
  output sample : int[16];
  state hold : int[16] = 0;

  when present(tick) && present(accel) ->
    { emit sample(value(accel)); hold := value(accel); }
  when present(tick)  -> { emit sample(hold); }
  when present(accel) -> { hold := value(accel); }
}

module control_law {
  input sample : int[16];
  input mode;                # comfort/sport toggle button
  output damper : int[8];
  state sport : int[2] = 0;
  state prev : int[16] = 0;

  when present(mode) && sport == 0 -> { sport := 1; }
  when present(mode) && sport == 1 -> { sport := 0; }
  when present(sample) && sport == 1 ->
    { emit damper((value(sample) + prev) / 4 + 2); prev := value(sample); }
  when present(sample) && sport == 0 ->
    { emit damper((value(sample) + prev) / 8); prev := value(sample); }
}

module actuator {
  input damper : int[8];     # commanded valve position
  output valve : int[8];     # actual (slew-limited) position
  state cur : int[8] = 0;

  when present(damper) && value(damper) > cur -> { cur := cur + 1; emit valve(cur + 1); }
  when present(damper) && value(damper) < cur -> { cur := cur - 1; emit valve(cur - 1); }
  when present(damper) && value(damper) == cur -> { }
}

module watchdog {
  input sample : int[16];
  input tick;
  output fault;
  state miss : int[4] = 0;

  when present(sample)               -> { miss := 0; }
  when present(tick) && miss < 2    -> { miss := miss + 1; }
  when present(tick) && miss >= 2   -> { emit fault; miss := 3; }
}

network shock {
  instance smp : sampler     (accel = accel_in, tick = ctrl_tick, sample = acc_sample);
  instance law : control_law (sample = acc_sample, mode = mode_btn, damper = damper_cmd);
  instance act : actuator    (damper = damper_cmd, valve = valve_out);
  instance wdg : watchdog    (sample = acc_sample, tick = ctrl_tick);
}
)rsl";
}

const char* microwave_source() {
  return R"rsl(
# --- Microwave oven controller (paper §I-A's motivating domain) ---------------
# keypad -> controller (door interlock, countdown) -> magnetron + beeper.

module keypad {
  input digit : int[10];     # numeric key: adds minutes
  input clear;
  input start_btn;
  output set_time : int[16];
  output start;
  state acc : int[16] = 0;

  when present(digit)               -> { acc := acc + value(digit); }
  when present(clear)               -> { acc := 0; }
  when present(start_btn) && acc > 0 ->
    { emit set_time(acc); emit start; acc := 0; }
}

module controller {
  input set_time : int[16];
  input start;
  input tick;                # one minute
  input door_open;
  input door_closed;
  output heat_on;
  output heat_off;
  output done;
  state cooking : int[2] = 0;
  state remaining : int[16] = 0;
  state door : int[2] = 1;   # 1 = closed

  # Opening the door while cooking stops the magnetron immediately.
  when present(door_open) && cooking == 1 ->
    { door := 0; cooking := 0; emit heat_off; }
  when present(door_open)   -> { door := 0; }
  when present(door_closed) -> { door := 1; }
  # Keypad delivers time and start in the same snapshot.
  when present(set_time) && present(start) && door == 1 ->
    { remaining := value(set_time); cooking := 1; emit heat_on; }
  when present(set_time)    -> { remaining := value(set_time); }
  when present(tick) && cooking == 1 && remaining > 1 ->
    { remaining := remaining - 1; }
  when present(tick) && cooking == 1 && remaining == 1 ->
    { remaining := 0; cooking := 0; emit heat_off; emit done; }
}

module magnetron {
  input heat_on;
  input heat_off;
  output power : int[2];
  state on : int[2] = 0;

  when present(heat_off) -> { on := 0; emit power(0); }
  when present(heat_on)  -> { on := 1; emit power(1); }
}

module beeper {
  input done;
  output beep;
  when present(done) -> { emit beep; }
}

network microwave {
  instance pad  : keypad;
  instance ctl  : controller;
  instance mag  : magnetron;
  instance bell : beeper;
}
)rsl";
}

frontend::ParsedFile dashboard() {
  return frontend::parse(dashboard_source());
}

const char* level_meter_source() {
  return R"rsl(
# --- Level meter --------------------------------------------------------------
# A quantizer thresholds a sensor into levels 0..3; the display drives a bar
# gauge. The display also has an overload latch for levels >= 4 — locally
# plausible (the net carries int[8]) but globally unreachable, since the
# quantizer never emits one. Symbolic reachability proves the assertion and
# feeds the dead branch back into synthesis as a global don't-care.

module quantizer {
  input sensor : int[8];
  output level : int[8];

  when present(sensor) && value(sensor) < 2 -> { emit level(0); }
  when present(sensor) && value(sensor) < 4 -> { emit level(1); }
  when present(sensor) && value(sensor) < 6 -> { emit level(2); }
  when present(sensor)                      -> { emit level(3); }
}

module display {
  input level : int[8];
  output bar_pwm : int[8];
  state bars : int[4] = 0;
  state overload : int[2] = 0;

  assert overload == 0;      # provable only with the whole network in view

  when present(level) && value(level) >= 4 ->
    { overload := 1; bars := 3; emit bar_pwm(7); }
  when present(level) && value(level) != bars ->
    { bars := value(level); emit bar_pwm(value(level) * 2); }
  when present(level) -> { }
}

network meter {
  instance q : quantizer (sensor = sensor, level = level);
  instance d : display   (level = level, bar_pwm = bar_pwm);
}
)rsl";
}

frontend::ParsedFile level_meter() {
  return frontend::parse(level_meter_source());
}

frontend::ParsedFile microwave() {
  return frontend::parse(microwave_source());
}

frontend::ParsedFile shock_absorber() {
  return frontend::parse(shock_absorber_source());
}

namespace {

std::shared_ptr<const cfsm::Cfsm> module_of(const frontend::ParsedFile& file,
                                            const std::string& name) {
  auto it = file.modules.find(name);
  POLIS_CHECK_MSG(it != file.modules.end(), "missing module " << name);
  return it->second;
}

std::shared_ptr<cfsm::Network> network_of(const frontend::ParsedFile& file,
                                          const std::string& name) {
  auto it = file.networks.find(name);
  POLIS_CHECK_MSG(it != file.networks.end(), "missing network " << name);
  return it->second;
}

}  // namespace

std::vector<std::shared_ptr<const cfsm::Cfsm>> dashboard_modules() {
  const frontend::ParsedFile file = dashboard();
  return {module_of(file, "belt"),        module_of(file, "debounce"),
          module_of(file, "pulse_counter"), module_of(file, "speedometer"),
          module_of(file, "odometer"),    module_of(file, "tachometer")};
}

std::shared_ptr<cfsm::Network> dash_network() {
  return network_of(dashboard(), "dash");
}

std::shared_ptr<cfsm::Network> dash_core_network() {
  return network_of(dashboard(), "dash_core");
}

std::shared_ptr<cfsm::Network> shock_network() {
  return network_of(shock_absorber(), "shock");
}

std::vector<std::shared_ptr<const cfsm::Cfsm>> shock_modules() {
  const frontend::ParsedFile file = shock_absorber();
  return {module_of(file, "sampler"), module_of(file, "control_law"),
          module_of(file, "actuator"), module_of(file, "watchdog")};
}

std::shared_ptr<cfsm::Network> meter_network() {
  return network_of(level_meter(), "meter");
}

std::vector<std::shared_ptr<const cfsm::Cfsm>> meter_modules() {
  const frontend::ParsedFile file = level_meter();
  return {module_of(file, "quantizer"), module_of(file, "display")};
}

std::shared_ptr<cfsm::Network> microwave_network() {
  return network_of(microwave(), "microwave");
}

std::vector<std::shared_ptr<const cfsm::Cfsm>> microwave_modules() {
  const frontend::ParsedFile file = microwave();
  return {module_of(file, "keypad"), module_of(file, "controller"),
          module_of(file, "magnetron"), module_of(file, "beeper")};
}

std::string generated_dash_source(int channels) {
  POLIS_CHECK_MSG(channels >= 1, "generated dashboard needs >= 1 channel");
  std::string out = R"rsl(
# --- Generated N-channel dashboard (scaling family) ---------------------------
# N independent wheel-speed chains sharing one sampling timer; emitted by
# systems::generated_dash_source / tools/gen_dash.

module debounce {
  input raw;                 # raw sensor pulse
  input tick;                # sampling timer
  output clean;              # debounced pulse
  state cnt : int[4] = 0;

  when present(raw) && cnt < 2  -> { cnt := cnt + 1; }
  when present(raw) && cnt >= 2 -> { emit clean; cnt := 3; }
  when !present(raw) && present(tick) -> { cnt := 0; }
}

module pulse_counter {
  input pulse;               # debounced pulse
  input tick;                # window timer
  output count : int[8];     # pulses in the closed window
  state n : int[8] = 0;

  when present(tick)                   -> { emit count(n); n := 0; }
  when present(pulse) && !present(tick) -> { n := n + 1; }
}

module speedometer {
  input count : int[8];
  output pwm : int[16];      # gauge duty cycle
  state last : int[8] = 0;

  when present(count) && value(count) != last ->
    { last := value(count); emit pwm(value(count) * 2); }
  when present(count) && value(count) == last -> { }
}

network dash_gen {
)rsl";
  for (int c = 0; c < channels; ++c) {
    const std::string i = std::to_string(c);
    out += "  instance deb" + i + " : debounce      (raw = raw" + i +
           ", tick = timer, clean = clean" + i + ");\n";
    out += "  instance cnt" + i + " : pulse_counter (pulse = clean" + i +
           ", tick = timer, count = count" + i + ");\n";
    out += "  instance spd" + i + " : speedometer   (count = count" + i +
           ", pwm = pwm" + i + ");\n";
  }
  out += "}\n";
  return out;
}

std::shared_ptr<cfsm::Network> generated_dash_network(int channels) {
  const frontend::ParsedFile file =
      frontend::parse(generated_dash_source(channels));
  return network_of(file, "dash_gen");
}

}  // namespace polis::systems
