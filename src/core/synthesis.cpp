#include "core/synthesis.hpp"

#include <algorithm>
#include <chrono>
#include <exception>
#include <optional>
#include <string>
#include <vector>

#include "obs/obs.hpp"
#include "util/check.hpp"
#include "util/governor.hpp"
#include "util/thread_pool.hpp"

namespace polis {

SynthesisResult synthesize(std::shared_ptr<const cfsm::Cfsm> machine,
                           const SynthesisOptions& options) {
  POLIS_CHECK(machine != nullptr);
  const auto t0 = std::chrono::steady_clock::now();

  OBS_SPAN(span, "synthesize", "pipeline");
  if (span.armed()) span.arg("machine", machine->name());

  SynthesisResult result;
  const bool degrade = options.on_budget == OnBudget::kDegrade ||
                       options.build.degrade_on_budget;
  ResourceGovernor* const gov = ResourceGovernor::current();
  const auto note = [&](const char* what) {
    if (gov != nullptr) gov->note_degradation(what);
    result.degradations.emplace_back(what);
  };
  sgraph::BuildOptions build_options = options.build;
  build_options.degrade_on_budget = degrade;

  result.machine = machine;
  result.manager = std::make_shared<bdd::BddManager>();
  {
    OBS_SPAN(stage, "cfsm.reactive_function", "pipeline");
    try {
      result.reactive =
          std::make_shared<cfsm::ReactiveFunction>(*machine, *result.manager);
    } catch (const BudgetExceeded&) {
      // χ is not optional; in degrade mode rebuild it ungoverned in a fresh
      // manager (the half-built one refunds its charges on destruction).
      if (!degrade) throw;
      note("characteristic function over budget; ungoverned rebuild");
      ResourceGovernor::Suspend suspend;
      result.manager = std::make_shared<bdd::BddManager>();
      result.reactive =
          std::make_shared<cfsm::ReactiveFunction>(*machine, *result.manager);
    }
  }
  result.graph = std::make_shared<sgraph::Sgraph>(
      sgraph::build_sgraph(*result.reactive, options.scheme, build_options));
  {
    // Once an s-graph exists, compile and codegen always complete: in
    // degrade mode they run with the governor suspended so an already-blown
    // deadline cannot interrupt the final (cheap, BDD-free) stages.
    std::optional<ResourceGovernor::Suspend> grace;
    if (degrade) grace.emplace();
    {
      OBS_SPAN(stage, "vm.compile", "pipeline");
      vm::CompileOptions compile_options;
      compile_options.optimize_copy_in = options.optimize_copy_in;
      result.compiled = std::make_shared<vm::CompiledReaction>(vm::compile(
          *result.graph, vm::SymbolInfo::from(*machine), compile_options));
    }
    {
      OBS_SPAN(stage, "codegen.generate_c", "pipeline");
      codegen::CCodegenOptions c_options;
      c_options.optimize_copy_in = options.optimize_copy_in;
      result.c_code = codegen::generate_c(*result.graph, *machine, c_options);
      result.vm_size_bytes =
          result.compiled->program.size_bytes(options.target);
    }
  }

  {
    OBS_SPAN(stage, "estim.estimate", "pipeline");
    try {
      estim::CostModel local_model;
      const estim::CostModel* model = options.cost_model;
      if (model == nullptr) {
        local_model = estim::calibrate(options.target);
        model = &local_model;
      }
      result.estimate =
          estim::estimate(*result.graph, *model, estim::context_for(*machine));
    } catch (const BudgetExceeded&) {
      // The estimate is advisory (schedulability inputs); the ladder drops
      // it rather than the synthesized code.
      if (!degrade) throw;
      result.estimate_skipped = true;
      result.estimate = {};
      note("estimator skipped on budget");
    }
  }

  // Fold this machine's kernel counters into the global registry now rather
  // than waiting for the manager's destructor: the result (and its manager)
  // may outlive any metrics snapshot the caller takes next.
  result.manager->flush_stats_to_obs();
  obs::MetricsRegistry::global().add(
      obs::MetricsRegistry::global().counter("synthesis.machines"), 1);

  result.synthesis_seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
          .count();
  if (span.armed()) {
    span.arg("sgraph_nodes", result.graph->num_nodes());
    span.arg("vm_size_bytes", result.vm_size_bytes);
  }
  return result;
}

NetworkSynthesis synthesize_network(const cfsm::Network& network,
                                    const SynthesisOptions& options) {
  OBS_SPAN(span, "synthesize_network", "pipeline");
  if (span.armed()) span.arg("network", network.name());

  SynthesisOptions shared = options;
  estim::CostModel local_model;
  if (shared.cost_model == nullptr) {
    // Calibration compiles sample programs through the governed BDD kernel.
    // The model feeds every machine's estimate, so in degrade mode a budget
    // trip here recalibrates ungoverned (small, deterministic) rather than
    // aborting the whole fan-out.
    try {
      local_model = estim::calibrate(shared.target);
    } catch (const BudgetExceeded&) {
      if (options.on_budget != OnBudget::kDegrade &&
          !options.build.degrade_on_budget)
        throw;
      if (ResourceGovernor* gov = ResourceGovernor::current())
        gov->note_degradation("calibration over budget; ungoverned rerun");
      ResourceGovernor::Suspend suspend;
      local_model = estim::calibrate(shared.target);
    }
    shared.cost_model = &local_model;
  }

  // Distinct machines in first-appearance order (instances sharing one
  // machine are synthesized once). Each machine's flow owns a private
  // BddManager, so the per-machine jobs below share only the read-only cost
  // model and write to disjoint result slots — the parallel path is
  // byte-identical to the serial one.
  std::vector<std::shared_ptr<const cfsm::Cfsm>> machines;
  std::map<const cfsm::Cfsm*, size_t> slot_of;
  for (const cfsm::Instance& inst : network.instances()) {
    if (slot_of.emplace(inst.machine.get(), machines.size()).second)
      machines.push_back(inst.machine);
  }

  // Per-machine options: identical to `shared` except for the global care
  // filter looked up by machine name (value captured by the jobs below).
  std::vector<SynthesisOptions> per_machine(machines.size(), shared);
  for (size_t i = 0; i < machines.size(); ++i) {
    auto it = shared.care_filter_by_machine.find(machines[i]->name());
    if (it != shared.care_filter_by_machine.end())
      per_machine[i].build.care_filter = it->second;
  }

  std::vector<SynthesisResult> results(machines.size());
  std::vector<std::exception_ptr> errors(machines.size());
  const size_t want =
      shared.num_threads > 0 ? static_cast<size_t>(shared.num_threads)
                             : ThreadPool::default_threads();
  const size_t threads = std::min(want, machines.size());
  // The ambient governor is thread-local: re-install the caller's instance
  // inside each pool job so budgets/deadline/cancellation span the whole
  // parallel fan-out (they all charge the same shared atomics).
  ResourceGovernor* const gov = ResourceGovernor::current();
  if (threads > 1) {
    ThreadPool pool(threads);
    for (size_t i = 0; i < machines.size(); ++i) {
      pool.submit([&, i] {
        // Sticky label for this worker's wall-clock trace lane; first job on
        // each pool thread wins, later calls are idempotent re-inserts.
        obs::TraceRecorder::global().name_this_thread(
            "synthesis worker #" + std::to_string(obs::this_thread_id()));
        ResourceGovernor::Scope scope(gov);
        try {
          results[i] = synthesize(machines[i], per_machine[i]);
        } catch (...) {
          errors[i] = std::current_exception();
        }
      });
    }
    pool.wait_idle();
  } else {
    for (size_t i = 0; i < machines.size(); ++i) {
      try {
        results[i] = synthesize(machines[i], per_machine[i]);
      } catch (...) {
        errors[i] = std::current_exception();
      }
    }
  }
  for (const std::exception_ptr& e : errors) {
    if (e) std::rethrow_exception(e);
  }

  NetworkSynthesis out;
  for (const cfsm::Instance& inst : network.instances()) {
    const SynthesisResult& r = results[slot_of.at(inst.machine.get())];
    out.per_instance[inst.name] = r;
    out.max_cycles[inst.name] = r.estimate.max_cycles;
  }
  return out;
}

}  // namespace polis
