#include "core/synthesis.hpp"

#include <chrono>

#include "util/check.hpp"

namespace polis {

SynthesisResult synthesize(std::shared_ptr<const cfsm::Cfsm> machine,
                           const SynthesisOptions& options) {
  POLIS_CHECK(machine != nullptr);
  const auto t0 = std::chrono::steady_clock::now();

  SynthesisResult result;
  result.machine = machine;
  result.manager = std::make_shared<bdd::BddManager>();
  result.reactive =
      std::make_shared<cfsm::ReactiveFunction>(*machine, *result.manager);
  result.graph = std::make_shared<sgraph::Sgraph>(
      sgraph::build_sgraph(*result.reactive, options.scheme, options.build));
  vm::CompileOptions compile_options;
  compile_options.optimize_copy_in = options.optimize_copy_in;
  result.compiled = std::make_shared<vm::CompiledReaction>(vm::compile(
      *result.graph, vm::SymbolInfo::from(*machine), compile_options));
  codegen::CCodegenOptions c_options;
  c_options.optimize_copy_in = options.optimize_copy_in;
  result.c_code = codegen::generate_c(*result.graph, *machine, c_options);
  result.vm_size_bytes = result.compiled->program.size_bytes(options.target);

  estim::CostModel local_model;
  const estim::CostModel* model = options.cost_model;
  if (model == nullptr) {
    local_model = estim::calibrate(options.target);
    model = &local_model;
  }
  result.estimate =
      estim::estimate(*result.graph, *model, estim::context_for(*machine));

  result.synthesis_seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
          .count();
  return result;
}

NetworkSynthesis synthesize_network(const cfsm::Network& network,
                                    const SynthesisOptions& options) {
  SynthesisOptions shared = options;
  estim::CostModel local_model;
  if (shared.cost_model == nullptr) {
    local_model = estim::calibrate(shared.target);
    shared.cost_model = &local_model;
  }

  NetworkSynthesis out;
  std::map<const cfsm::Cfsm*, SynthesisResult> by_machine;
  for (const cfsm::Instance& inst : network.instances()) {
    auto cached = by_machine.find(inst.machine.get());
    if (cached == by_machine.end())
      cached = by_machine
                   .emplace(inst.machine.get(),
                            synthesize(inst.machine, shared))
                   .first;
    out.per_instance[inst.name] = cached->second;
    out.max_cycles[inst.name] = cached->second.estimate.max_cycles;
  }
  return out;
}

}  // namespace polis
