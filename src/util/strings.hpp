// Small string helpers shared by the frontend, code generators and report
// printers. Kept deliberately minimal (C++ Core Guidelines SL.str).
#pragma once

#include <string>
#include <string_view>
#include <vector>

namespace polis {

/// Splits `s` on `sep`, keeping empty fields.
std::vector<std::string> split(std::string_view s, char sep);

/// Joins `parts` with `sep`.
std::string join(const std::vector<std::string>& parts, std::string_view sep);

/// Returns `s` with leading/trailing ASCII whitespace removed.
std::string_view trim(std::string_view s);

/// True if `s` is a valid C identifier ([A-Za-z_][A-Za-z0-9_]*).
bool is_identifier(std::string_view s);

/// Mangles an arbitrary signal/module name into a valid C identifier.
std::string c_identifier(std::string_view s);

/// Formats `n` with a thousands separator, for report tables.
std::string with_commas(long long n);

}  // namespace polis
