#include "util/table.hpp"

#include <algorithm>
#include <cctype>
#include <iomanip>
#include <ostream>
#include <sstream>

#include "util/check.hpp"

namespace polis {

namespace {

bool looks_numeric(const std::string& s) {
  if (s.empty()) return false;
  for (char c : s) {
    if (!(std::isdigit(static_cast<unsigned char>(c)) || c == '.' ||
          c == '-' || c == '+' || c == ',' || c == '%' || c == 'e'))
      return false;
  }
  return std::isdigit(static_cast<unsigned char>(s.back())) || s.back() == '%';
}

}  // namespace

Table::Table(std::vector<std::string> header) : header_(std::move(header)) {}

void Table::add_row(std::vector<std::string> row) {
  POLIS_CHECK_MSG(row.size() == header_.size(),
                  "row arity " << row.size() << " vs header "
                               << header_.size());
  rows_.push_back(Row{std::move(row), pending_separator_});
  pending_separator_ = false;
}

void Table::add_separator() { pending_separator_ = true; }

void Table::print(std::ostream& os) const {
  const size_t cols = header_.size();
  std::vector<size_t> width(cols);
  for (size_t c = 0; c < cols; ++c) width[c] = header_[c].size();
  for (const Row& r : rows_)
    for (size_t c = 0; c < cols; ++c)
      width[c] = std::max(width[c], r.cells[c].size());

  auto hline = [&] {
    os << '+';
    for (size_t c = 0; c < cols; ++c)
      os << std::string(width[c] + 2, '-') << '+';
    os << '\n';
  };
  auto emit = [&](const std::vector<std::string>& cells) {
    os << '|';
    for (size_t c = 0; c < cols; ++c) {
      const bool right = looks_numeric(cells[c]);
      os << ' ' << (right ? std::right : std::left) << std::setw(
                static_cast<int>(width[c]))
         << cells[c] << ' ' << '|';
    }
    os << '\n';
  };

  hline();
  emit(header_);
  hline();
  for (const Row& r : rows_) {
    if (r.separator_before) hline();
    emit(r.cells);
  }
  hline();
}

std::string fixed(double v, int prec) {
  std::ostringstream os;
  os << std::fixed << std::setprecision(prec) << v;
  return os.str();
}

}  // namespace polis
