#include "util/rng.hpp"

#include <algorithm>
#include <numeric>

#include "util/check.hpp"

namespace polis {

std::int64_t Rng::uniform(std::int64_t lo, std::int64_t hi) {
  POLIS_CHECK(lo <= hi);
  std::uniform_int_distribution<std::int64_t> d(lo, hi);
  return d(engine_);
}

double Rng::uniform01() {
  std::uniform_real_distribution<double> d(0.0, 1.0);
  return d(engine_);
}

bool Rng::flip(double p) { return uniform01() < p; }

double Rng::exponential(double mean) {
  POLIS_CHECK(mean > 0.0);
  std::exponential_distribution<double> d(1.0 / mean);
  return d(engine_);
}

std::vector<int> Rng::permutation(int n) {
  std::vector<int> p(static_cast<size_t>(n));
  std::iota(p.begin(), p.end(), 0);
  std::shuffle(p.begin(), p.end(), engine_);
  return p;
}

}  // namespace polis
