// Deterministic pseudo-random source for workload generation and property
// tests. A thin wrapper over std::mt19937_64 with convenience draws, so that
// every experiment in the repository is reproducible from a printed seed.
#pragma once

#include <cstdint>
#include <random>
#include <vector>

namespace polis {

class Rng {
 public:
  explicit Rng(std::uint64_t seed) : engine_(seed) {}

  /// Uniform integer in [lo, hi] inclusive. Requires lo <= hi.
  std::int64_t uniform(std::int64_t lo, std::int64_t hi);

  /// Uniform double in [0, 1).
  double uniform01();

  /// Bernoulli draw with probability `p` of true.
  bool flip(double p = 0.5);

  /// Exponentially distributed inter-arrival time with the given mean.
  double exponential(double mean);

  /// Random permutation of 0..n-1.
  std::vector<int> permutation(int n);

  std::mt19937_64& engine() { return engine_; }

 private:
  std::mt19937_64 engine_;
};

}  // namespace polis
