// A small fixed-size thread pool for share-nothing parallelism: the
// synthesis flow runs one BddManager per CFSM, so distinct machines can be
// synthesized concurrently with no shared mutable state (§I-H synthesizes
// one CFSM at a time; the network loop is embarrassingly parallel).
//
// Jobs are plain std::function<void()>; `wait_idle` blocks until every
// submitted job has finished. Exceptions must be handled inside the job
// (capture an std::exception_ptr per slot and rethrow after wait_idle), so
// a worker never dies mid-pool.
#pragma once

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace polis {

class ThreadPool {
 public:
  /// Spawns `num_threads` workers (at least one).
  explicit ThreadPool(size_t num_threads);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Enqueues a job. Must not be called after destruction has begun.
  void submit(std::function<void()> job);

  /// Blocks until the queue is empty and no worker is running a job.
  void wait_idle();

  size_t size() const { return workers_.size(); }

  /// Hardware concurrency with a sane floor (std::thread::hardware_concurrency
  /// may return 0).
  static size_t default_threads();

 private:
  void worker_loop();

  std::mutex mutex_;
  std::condition_variable work_ready_;   // signalled on submit / shutdown
  std::condition_variable all_idle_;     // signalled when a job finishes
  std::deque<std::function<void()>> queue_;
  size_t active_ = 0;  // jobs currently executing
  bool shutdown_ = false;
  std::vector<std::thread> workers_;
};

}  // namespace polis
