// ASCII table printer used by the benchmark harnesses to reproduce the
// paper's tables in the same row/column shape.
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

namespace polis {

class Table {
 public:
  explicit Table(std::vector<std::string> header);

  /// Appends a data row; must have the same arity as the header.
  void add_row(std::vector<std::string> row);

  /// Inserts a horizontal separator before the next row.
  void add_separator();

  /// Renders with column alignment (numbers right, text left).
  void print(std::ostream& os) const;

  size_t num_rows() const { return rows_.size(); }

 private:
  struct Row {
    std::vector<std::string> cells;
    bool separator_before = false;
  };
  std::vector<std::string> header_;
  std::vector<Row> rows_;
  bool pending_separator_ = false;
};

/// Convenience: formats a double with `prec` digits after the point.
std::string fixed(double v, int prec = 1);

}  // namespace polis
