// Atomic output writes: content is written to a sibling temp file and
// renamed over the target, so an interrupted or failed `polisc` run never
// leaves a truncated generated C / s-graph / report file. rename(2) within a
// directory is atomic on POSIX; on failure the temp file is removed and the
// old target (if any) is untouched.
#pragma once

#include <filesystem>
#include <string>

namespace polis {

/// Writes `content` to `path` atomically (temp file + rename). Throws
/// std::runtime_error if the temp file cannot be written or the rename
/// fails; the previous contents of `path`, if any, survive every failure
/// mode.
void write_file_atomic(const std::filesystem::path& path,
                       const std::string& content);

}  // namespace polis
