// Lightweight contract checking used throughout the library.
//
// POLIS_CHECK is always on (it guards library invariants whose violation
// would otherwise corrupt BDD/s-graph structures); POLIS_DCHECK compiles
// away in release builds and is used for hot-path assertions.
#pragma once

#include <sstream>
#include <stdexcept>
#include <string>

namespace polis {

/// Thrown when a library precondition or invariant is violated.
class CheckError : public std::logic_error {
 public:
  explicit CheckError(const std::string& what) : std::logic_error(what) {}
};

[[noreturn]] inline void check_failed(const char* cond, const char* file,
                                      int line, const std::string& msg) {
  std::ostringstream os;
  os << file << ":" << line << ": check failed: " << cond;
  if (!msg.empty()) os << " — " << msg;
  throw CheckError(os.str());
}

}  // namespace polis

#define POLIS_CHECK(cond)                                        \
  do {                                                           \
    if (!(cond)) ::polis::check_failed(#cond, __FILE__, __LINE__, ""); \
  } while (0)

#define POLIS_CHECK_MSG(cond, msg)                               \
  do {                                                           \
    if (!(cond)) {                                               \
      std::ostringstream polis_check_os_;                        \
      polis_check_os_ << msg;                                    \
      ::polis::check_failed(#cond, __FILE__, __LINE__,           \
                            polis_check_os_.str());              \
    }                                                            \
  } while (0)

#ifdef NDEBUG
#define POLIS_DCHECK(cond) \
  do {                     \
  } while (0)
#else
#define POLIS_DCHECK(cond) POLIS_CHECK(cond)
#endif
