#include "util/thread_pool.hpp"

#include <algorithm>
#include <utility>

namespace polis {

ThreadPool::ThreadPool(size_t num_threads) {
  const size_t n = std::max<size_t>(1, num_threads);
  workers_.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    shutdown_ = true;
  }
  work_ready_.notify_all();
  for (std::thread& w : workers_) w.join();
}

void ThreadPool::submit(std::function<void()> job) {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    queue_.push_back(std::move(job));
  }
  work_ready_.notify_one();
}

void ThreadPool::wait_idle() {
  std::unique_lock<std::mutex> lock(mutex_);
  all_idle_.wait(lock, [this] { return queue_.empty() && active_ == 0; });
}

size_t ThreadPool::default_threads() {
  const unsigned hw = std::thread::hardware_concurrency();
  return hw == 0 ? 2 : hw;
}

void ThreadPool::worker_loop() {
  std::unique_lock<std::mutex> lock(mutex_);
  for (;;) {
    work_ready_.wait(lock, [this] { return shutdown_ || !queue_.empty(); });
    if (queue_.empty()) return;  // shutdown with a drained queue
    std::function<void()> job = std::move(queue_.front());
    queue_.pop_front();
    ++active_;
    lock.unlock();
    job();
    lock.lock();
    --active_;
    if (queue_.empty() && active_ == 0) all_idle_.notify_all();
  }
}

}  // namespace polis
