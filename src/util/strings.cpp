#include "util/strings.hpp"

#include <cctype>

namespace polis {

std::vector<std::string> split(std::string_view s, char sep) {
  std::vector<std::string> out;
  size_t start = 0;
  while (true) {
    const size_t pos = s.find(sep, start);
    if (pos == std::string_view::npos) {
      out.emplace_back(s.substr(start));
      return out;
    }
    out.emplace_back(s.substr(start, pos - start));
    start = pos + 1;
  }
}

std::string join(const std::vector<std::string>& parts, std::string_view sep) {
  std::string out;
  for (size_t i = 0; i < parts.size(); ++i) {
    if (i != 0) out += sep;
    out += parts[i];
  }
  return out;
}

std::string_view trim(std::string_view s) {
  size_t b = 0;
  size_t e = s.size();
  while (b < e && std::isspace(static_cast<unsigned char>(s[b]))) ++b;
  while (e > b && std::isspace(static_cast<unsigned char>(s[e - 1]))) --e;
  return s.substr(b, e - b);
}

bool is_identifier(std::string_view s) {
  if (s.empty()) return false;
  if (!(std::isalpha(static_cast<unsigned char>(s[0])) || s[0] == '_'))
    return false;
  for (char c : s.substr(1)) {
    if (!(std::isalnum(static_cast<unsigned char>(c)) || c == '_'))
      return false;
  }
  return true;
}

std::string c_identifier(std::string_view s) {
  std::string out;
  out.reserve(s.size() + 1);
  if (s.empty() || std::isdigit(static_cast<unsigned char>(s[0])))
    out.push_back('_');
  for (char c : s) {
    out.push_back(
        (std::isalnum(static_cast<unsigned char>(c)) || c == '_') ? c : '_');
  }
  return out;
}

std::string with_commas(long long n) {
  std::string digits = std::to_string(n < 0 ? -n : n);
  std::string out;
  const size_t len = digits.size();
  for (size_t i = 0; i < len; ++i) {
    if (i != 0 && (len - i) % 3 == 0) out.push_back(',');
    out.push_back(digits[i]);
  }
  if (n < 0) out.insert(out.begin(), '-');
  return out;
}

}  // namespace polis
