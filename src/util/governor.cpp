#include "util/governor.hpp"

#include <sstream>

#include "obs/metrics.hpp"
#include "obs/series.hpp"

namespace polis {

constinit thread_local ResourceGovernor* ResourceGovernor::tls_current_ = nullptr;
constinit thread_local bool ResourceGovernor::tls_suspended_ = false;

namespace {

// splitmix64 — the same generator family the RTOS FaultPlan uses; one draw
// per growth decision keyed by (seed, draw index) so failure points replay
// exactly for a fixed seed and serial draw order.
uint64_t splitmix64(uint64_t x) {
  x += 0x9e3779b97f4a7c15ull;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
  return x ^ (x >> 31);
}

double unit_double(uint64_t bits) {
  return static_cast<double>(bits >> 11) * 0x1.0p-53;
}

}  // namespace

ResourceGovernor::ResourceGovernor(const GovernorLimits& limits,
                                   CancellationToken token)
    : limits_(limits), token_(std::move(token)) {}

void ResourceGovernor::set_alloc_fault_plan(const AllocFaultPlan& plan) {
  fault_plan_ = plan;
}

bool ResourceGovernor::deadline_expired() const {
  if (limits_.deadline_ms <= 0) return false;
  const auto elapsed = std::chrono::steady_clock::now() - start_;
  return std::chrono::duration_cast<std::chrono::milliseconds>(elapsed)
             .count() >= limits_.deadline_ms;
}

bool ResourceGovernor::nodes_over_budget() const {
  if (limits_.max_nodes == 0) return false;
  return charged_nodes_.load(std::memory_order_relaxed) > limits_.max_nodes;
}

void ResourceGovernor::poll_slow() {
  if (tls_suspended_) return;
#ifndef POLIS_OBS_DISABLED
  // Budget-headroom gauges for the streaming series: published only while a
  // series recorder is live (a relaxed load otherwise) and only for budgets
  // that are actually set, so default runs keep their byte-identical sim
  // series (headroom_ms is wall-dependent by nature).
  if (obs::SeriesRecorder::global().enabled()) {
    auto& reg = obs::MetricsRegistry::global();
    struct Ids {
      obs::MetricsRegistry::Id nodes, bytes, ms;
    };
    static const Ids ids = {
        obs::MetricsRegistry::global().gauge("governor.headroom_nodes"),
        obs::MetricsRegistry::global().gauge("governor.headroom_bytes"),
        obs::MetricsRegistry::global().gauge("governor.headroom_ms"),
    };
    if (limits_.max_nodes != 0) {
      const uint64_t used = charged_nodes_.load(std::memory_order_relaxed);
      reg.set(ids.nodes, used >= limits_.max_nodes
                             ? 0
                             : static_cast<int64_t>(limits_.max_nodes - used));
    }
    if (limits_.max_arena_bytes != 0) {
      const uint64_t used = charged_bytes_.load(std::memory_order_relaxed);
      reg.set(ids.bytes,
              used >= limits_.max_arena_bytes
                  ? 0
                  : static_cast<int64_t>(limits_.max_arena_bytes - used));
    }
    if (limits_.deadline_ms > 0) {
      const auto elapsed = std::chrono::steady_clock::now() - start_;
      const int64_t elapsed_ms =
          std::chrono::duration_cast<std::chrono::milliseconds>(elapsed)
              .count();
      reg.set(ids.ms, limits_.deadline_ms > elapsed_ms
                          ? limits_.deadline_ms - elapsed_ms
                          : 0);
    }
  }
#endif
  if (token_.cancel_requested()) {
    budget_hits_.fetch_add(1, std::memory_order_relaxed);
    throw Cancelled();
  }
  if (deadline_expired()) {
    std::ostringstream os;
    os << "wall-clock deadline of " << limits_.deadline_ms << " ms exceeded";
    throw_budget(BudgetExceeded::Kind::kDeadline, os.str());
  }
  if (nodes_over_budget()) {
    std::ostringstream os;
    os << "live BDD node budget exceeded ("
       << charged_nodes_.load(std::memory_order_relaxed) << " > "
       << limits_.max_nodes << ")";
    throw_budget(BudgetExceeded::Kind::kNodes, os.str());
  }
}

void ResourceGovernor::charge_arena(int64_t nodes, int64_t bytes) {
  // Refunds (GC, manager teardown) must never throw — they run on unwind
  // paths. fetch_add with a negative delta wraps benignly only if callers
  // never refund more than they charged; the BDD kernel charges per node
  // created and refunds per node destroyed, so the running sum is exact.
  const uint64_t new_nodes =
      charged_nodes_.fetch_add(static_cast<uint64_t>(nodes),
                               std::memory_order_relaxed) +
      static_cast<uint64_t>(nodes);
  const uint64_t new_bytes =
      charged_bytes_.fetch_add(static_cast<uint64_t>(bytes),
                               std::memory_order_relaxed) +
      static_cast<uint64_t>(bytes);
  if (nodes <= 0 && bytes <= 0) return;
  if (tls_suspended_) return;
  if (limits_.max_nodes != 0 && new_nodes > limits_.max_nodes) {
    std::ostringstream os;
    os << "live BDD node budget exceeded (" << new_nodes << " > "
       << limits_.max_nodes << ")";
    throw_budget(BudgetExceeded::Kind::kNodes, os.str());
  }
  if (limits_.max_arena_bytes != 0 && new_bytes > limits_.max_arena_bytes) {
    std::ostringstream os;
    os << "BDD arena byte budget exceeded (" << new_bytes << " > "
       << limits_.max_arena_bytes << ")";
    throw_budget(BudgetExceeded::Kind::kBytes, os.str());
  }
}

void ResourceGovernor::draw_alloc_fault(const char* site) {
  if (!fault_plan_.enabled() || tls_suspended_) return;
  const uint64_t draw = fault_draws_.fetch_add(1, std::memory_order_relaxed);
  if (alloc_faults_injected_.load(std::memory_order_relaxed) >=
      fault_plan_.max_failures)
    return;
  bool fail = false;
  if (fault_plan_.fail_first_n > 0 && draw >= fault_plan_.fail_after &&
      draw < fault_plan_.fail_after + fault_plan_.fail_first_n)
    fail = true;
  if (!fail && fault_plan_.probability > 0.0 &&
      unit_double(splitmix64(fault_plan_.seed ^ (draw * 0x9e3779b97f4a7c15ull))) <
          fault_plan_.probability)
    fail = true;
  if (!fail) return;
  alloc_faults_injected_.fetch_add(1, std::memory_order_relaxed);
  std::ostringstream os;
  os << "injected allocation failure at " << site << " (draw " << draw
     << ", seed " << fault_plan_.seed << ")";
  throw_budget(BudgetExceeded::Kind::kAllocation, os.str());
}

void ResourceGovernor::throw_budget(BudgetExceeded::Kind kind,
                                    const std::string& message) {
  budget_hits_.fetch_add(1, std::memory_order_relaxed);
  throw BudgetExceeded(kind, message);
}

void ResourceGovernor::note_degradation(const char* what) {
  degradations_.fetch_add(1, std::memory_order_relaxed);
  auto& reg = obs::MetricsRegistry::global();
  static const obs::MetricsRegistry::Id id =
      reg.counter("governor.degradations");
  reg.add(id, 1);
  (void)what;
}

void ResourceGovernor::flush_stats_to_obs() const {
  auto& reg = obs::MetricsRegistry::global();
  struct Ids {
    obs::MetricsRegistry::Id polls, budget_hits, alloc_faults, peak_nodes;
  };
  static const Ids ids = {
      reg.counter("governor.polls"),
      reg.counter("governor.budget_hits"),
      reg.counter("governor.alloc_faults_injected"),
      reg.max_gauge("governor.peak_charged_nodes"),
  };
  // Counters are cumulative in the registry; report deltas since the last
  // flush so repeated flushes don't double-count.
  const uint64_t polls = polls_.load(std::memory_order_relaxed);
  const uint64_t hits = budget_hits_.load(std::memory_order_relaxed);
  const uint64_t faults =
      alloc_faults_injected_.load(std::memory_order_relaxed);
  reg.add(ids.polls, polls - flushed_polls_);
  reg.add(ids.budget_hits, hits - flushed_hits_);
  reg.add(ids.alloc_faults, faults - flushed_faults_);
  reg.set(ids.peak_nodes,
          static_cast<int64_t>(charged_nodes_.load(std::memory_order_relaxed)));
  flushed_polls_ = polls;
  flushed_hits_ = hits;
  flushed_faults_ = faults;
}

}  // namespace polis
