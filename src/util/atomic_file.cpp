#include "util/atomic_file.hpp"

#include <atomic>
#include <fstream>
#include <stdexcept>
#include <system_error>

namespace polis {

void write_file_atomic(const std::filesystem::path& path,
                       const std::string& content) {
  // Uniquify the temp name per process and per call so concurrent writers
  // to different targets in the same directory never collide.
  static std::atomic<uint64_t> seq{0};
  std::filesystem::path tmp = path;
  tmp += ".tmp." + std::to_string(seq.fetch_add(1));

  {
    std::ofstream os(tmp, std::ios::binary | std::ios::trunc);
    if (!os) throw std::runtime_error("cannot open " + tmp.string());
    os.write(content.data(),
             static_cast<std::streamsize>(content.size()));
    os.flush();
    if (!os) {
      os.close();
      std::error_code ec;
      std::filesystem::remove(tmp, ec);
      throw std::runtime_error("failed writing " + tmp.string());
    }
  }

  std::error_code ec;
  std::filesystem::rename(tmp, path, ec);
  if (ec) {
    std::error_code rm_ec;
    std::filesystem::remove(tmp, rm_ec);
    throw std::runtime_error("failed renaming " + tmp.string() + " -> " +
                             path.string() + ": " + ec.message());
  }
}

}  // namespace polis
