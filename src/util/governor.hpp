// Resource governor: cooperative budgets, deadlines and cancellation for the
// synthesis pipeline.
//
// The compiler's hot loops (BDD apply/ITE, sifting, the verification
// fixpoint, s-graph construction, RTOS simulation) are all potentially
// exponential in the input; a long-lived service (`polisd`, ROADMAP item 1)
// cannot afford any of them to run unbounded or to die on a resource
// blow-up. The governor provides:
//
//   - a wall-clock deadline, a live-BDD-node budget and an arena-bytes cap
//     (`GovernorLimits`), plus a cooperative `CancellationToken`;
//   - an ambient, thread-local instance (`ResourceGovernor::current()`)
//     installed with a `Scope` RAII guard, so deep kernel code need not
//     thread a pointer through every signature;
//   - amortized polling in the style of the obs span gate: `poll()` is a
//     relaxed counter bump on the fast path and only consults the clock /
//     cancel flag every `kPollStride` calls;
//   - a split error taxonomy: `RecoverableError` (→ `BudgetExceeded`,
//     `Cancelled`) unwinds cleanly and leaves every manager usable, while
//     `CheckError` (util/check.hpp) remains fatal for genuine invariant
//     corruption;
//   - a seeded `AllocFaultPlan` mirroring the RTOS `FaultPlan`
//     (src/rtos/fault.hpp): replayable injection of allocation failures into
//     the arena/cache growth paths, used by tests to prove unwind paths are
//     leak- and corruption-free under ASan.
//
// Determinism contract: node- and byte-budget trips depend only on the
// operation sequence, so a given budget always trips at the same point and
// degraded outputs are byte-identical across runs. Deadline and cancel trips
// are timing-dependent by nature and are only used where the degraded result
// is still correct (sift keeps the best order found so far; verification
// reports an honest kUnknown).
#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <memory>
#include <stdexcept>
#include <string>

namespace polis {

// --- Error taxonomy ---------------------------------------------------------

/// Base class for errors that unwind the current phase but leave the process
/// (and every BddManager) healthy. Contrast CheckError: invariant corruption,
/// never caught by the pipeline.
class RecoverableError : public std::runtime_error {
 public:
  explicit RecoverableError(const std::string& message)
      : std::runtime_error(message) {}
};

/// A resource budget was exhausted. Which one is in `kind()`.
class BudgetExceeded : public RecoverableError {
 public:
  enum class Kind {
    kDeadline,    ///< wall-clock deadline passed
    kNodes,       ///< live BDD nodes over budget
    kBytes,       ///< arena bytes over cap
    kAllocation,  ///< allocation failed (real bad_alloc or injected fault)
  };

  BudgetExceeded(Kind kind, const std::string& message)
      : RecoverableError(message), kind_(kind) {}

  Kind kind() const { return kind_; }

  static const char* kind_name(Kind k) {
    switch (k) {
      case Kind::kDeadline: return "deadline";
      case Kind::kNodes: return "nodes";
      case Kind::kBytes: return "bytes";
      case Kind::kAllocation: return "allocation";
    }
    return "?";
  }

 private:
  Kind kind_;
};

/// Cooperative cancellation was requested via a CancellationToken.
class Cancelled : public RecoverableError {
 public:
  Cancelled() : RecoverableError("operation cancelled") {}
};

// --- Exit codes -------------------------------------------------------------

/// Process exit codes `polisc` maps the taxonomy to. Stable contract for
/// scripts and the future polisd supervisor.
enum ExitCode : int {
  kExitOk = 0,
  kExitError = 1,     ///< generic / uncategorized failure
  kExitUsage = 2,     ///< bad command line
  kExitParse = 3,     ///< frontend ParseError (malformed input)
  kExitBudget = 4,    ///< BudgetExceeded under --on-budget=fail
  kExitCancelled = 5, ///< cooperative cancellation
  kExitInternal = 6,  ///< CheckError: invariant corruption (a bug)
};

// --- Cancellation -----------------------------------------------------------

/// Copyable handle to a shared cancel flag. The producer side calls
/// `request_cancel()`; governors observe it with a relaxed load.
class CancellationToken {
 public:
  CancellationToken() : flag_(std::make_shared<std::atomic<bool>>(false)) {}

  void request_cancel() { flag_->store(true, std::memory_order_relaxed); }
  bool cancel_requested() const {
    return flag_->load(std::memory_order_relaxed);
  }

 private:
  std::shared_ptr<std::atomic<bool>> flag_;
};

// --- Fault injection --------------------------------------------------------

/// Seeded, replayable allocation-failure plan, mirroring rtos::FaultPlan.
/// Each growth decision in the BDD arena / unique table / computed cache
/// draws once; a draw below `probability` (or within the first
/// `fail_first_n` draws after `fail_after`) fails the allocation as a
/// recoverable BudgetExceeded{kAllocation}. Draw order is deterministic for
/// a serial pipeline (tests run num_threads=1).
struct AllocFaultPlan {
  uint64_t seed = 0;
  double probability = 0.0;  ///< chance each draw fails
  uint64_t fail_after = 0;   ///< draws before deterministic failures start
  uint64_t fail_first_n = 0; ///< number of deterministic failures injected
  uint64_t max_failures = ~0ull;

  bool enabled() const { return probability > 0.0 || fail_first_n > 0; }
};

// --- Limits -----------------------------------------------------------------

struct GovernorLimits {
  /// Wall-clock budget in milliseconds; 0 = unlimited.
  int64_t deadline_ms = 0;
  /// Max BDD nodes charged to this governor (across all managers in the
  /// scope); 0 = unlimited.
  uint64_t max_nodes = 0;
  /// Max arena bytes charged to this governor; 0 = unlimited.
  uint64_t max_arena_bytes = 0;

  bool any() const {
    return deadline_ms > 0 || max_nodes > 0 || max_arena_bytes > 0;
  }
};

// --- Governor ---------------------------------------------------------------

/// What to do when a budget trips mid-pipeline.
enum class OnBudget {
  kFail,    ///< unwind the whole run with BudgetExceeded (exit code 4)
  kDegrade, ///< walk the degradation ladder; always produce correct output
};

class ResourceGovernor {
 public:
  /// Real deadline/cancel checks happen every `kPollStride` polls; budget
  /// charges are exact. Matches the obs span gate's amortization style.
  static constexpr uint32_t kPollStride = 256;

  ResourceGovernor() = default;
  explicit ResourceGovernor(const GovernorLimits& limits,
                            CancellationToken token = {});

  ResourceGovernor(const ResourceGovernor&) = delete;
  ResourceGovernor& operator=(const ResourceGovernor&) = delete;

  /// The governor ambient on this thread, or nullptr.
  static ResourceGovernor* current() { return tls_current_; }

  /// RAII installer for the ambient governor. Nests; restores the previous
  /// governor on destruction.
  class Scope {
   public:
    explicit Scope(ResourceGovernor* gov) : prev_(tls_current_) {
      tls_current_ = gov;
    }
    ~Scope() { tls_current_ = prev_; }
    Scope(const Scope&) = delete;
    Scope& operator=(const Scope&) = delete;

   private:
    ResourceGovernor* prev_;
  };

  /// RAII guard that makes throwing polls no-ops on this thread while alive.
  /// Used around code that must run to completion even over budget: sift's
  /// settle-back, degrade-mode codegen, unwind paths.
  class Suspend {
   public:
    Suspend() : prev_(tls_suspended_) { tls_suspended_ = true; }
    ~Suspend() { tls_suspended_ = prev_; }
    Suspend(const Suspend&) = delete;
    Suspend& operator=(const Suspend&) = delete;

   private:
    bool prev_;
  };

  static bool suspended() { return tls_suspended_; }

  // --- Throwing API (hot paths) --------------------------------------------

  /// Full deadline/cancel check. Throws BudgetExceeded{kDeadline} or
  /// Cancelled. Costs a clock read — call at coarse points (fixpoint
  /// iterations, per-pass loops) or via the amortized `poll_current()`.
  void poll() {
    polls_.fetch_add(1, std::memory_order_relaxed);
    poll_slow();
  }

  /// Amortized `poll()` on the ambient governor: a thread-local counter bump
  /// on the fast path (no shared-cacheline traffic — workers would otherwise
  /// contend on one governor), a real check every `kPollStride` calls. The
  /// single call site to sprinkle into hot loops.
  static void poll_current() {
    thread_local uint32_t countdown = 0;
    if (++countdown & (kPollStride - 1)) return;
    if (ResourceGovernor* g = tls_current_) g->poll();
  }

  /// Charge `nodes` live nodes / `bytes` arena bytes against the budgets;
  /// throws BudgetExceeded{kNodes|kBytes} when a cap is crossed. Negative
  /// deltas refund (GC, manager destruction).
  void charge_arena(int64_t nodes, int64_t bytes);

  static void charge_arena_current(int64_t nodes, int64_t bytes) {
    if (ResourceGovernor* g = tls_current_) g->charge_arena(nodes, bytes);
  }

  /// Draw from the alloc-fault plan; throws BudgetExceeded{kAllocation} on an
  /// injected failure. Call once per arena/table/cache growth decision.
  void draw_alloc_fault(const char* site);

  static void draw_alloc_fault_current(const char* site) {
    if (ResourceGovernor* g = tls_current_) g->draw_alloc_fault(site);
  }

  // --- Non-throwing API (degrade decisions) --------------------------------

  /// True once the deadline has passed (checked for real, not amortized).
  bool deadline_expired() const;
  /// True once cancellation was requested.
  bool cancel_requested() const { return token_.cancel_requested(); }
  /// True if the live-node budget is currently exceeded.
  bool nodes_over_budget() const;
  /// Deadline, cancel or node budget — "stop looping and settle" signal for
  /// loops that degrade rather than throw (sift, verification fixpoint).
  bool should_stop() const {
    return deadline_expired() || cancel_requested() || nodes_over_budget();
  }

  // --- Configuration / bookkeeping -----------------------------------------

  const GovernorLimits& limits() const { return limits_; }
  void set_alloc_fault_plan(const AllocFaultPlan& plan);
  const CancellationToken& token() const { return token_; }

  /// Record a degradation event (e.g. "sift stopped at deadline"); counted
  /// into obs metrics and surfaced by polisc.
  void note_degradation(const char* what);

  uint64_t polls() const { return polls_.load(std::memory_order_relaxed); }
  uint64_t charged_nodes() const {
    return charged_nodes_.load(std::memory_order_relaxed);
  }
  uint64_t charged_bytes() const {
    return charged_bytes_.load(std::memory_order_relaxed);
  }
  uint64_t degradations() const {
    return degradations_.load(std::memory_order_relaxed);
  }
  uint64_t budget_hits() const {
    return budget_hits_.load(std::memory_order_relaxed);
  }
  uint64_t alloc_faults_injected() const {
    return alloc_faults_injected_.load(std::memory_order_relaxed);
  }

  /// Flush poll/hit/degradation counters into the obs metrics registry
  /// (governor.* metrics). Cheap; call once per phase or at exit.
  void flush_stats_to_obs() const;

 private:
  void poll_slow();
  [[noreturn]] void throw_budget(BudgetExceeded::Kind kind,
                                 const std::string& message);

  // constinit: guaranteed constant-initialized, so no TLS init wrapper is
  // emitted and cross-TU access compiles to a direct TLS load (the wrapper's
  // weak-symbol init test also false-positives GCC's -fsanitize=null).
  static constinit thread_local ResourceGovernor* tls_current_;
  static constinit thread_local bool tls_suspended_;

  GovernorLimits limits_;
  CancellationToken token_;
  std::chrono::steady_clock::time_point start_ =
      std::chrono::steady_clock::now();

  std::atomic<uint64_t> polls_{0};
  std::atomic<uint64_t> charged_nodes_{0};
  std::atomic<uint64_t> charged_bytes_{0};
  std::atomic<uint64_t> degradations_{0};
  std::atomic<uint64_t> budget_hits_{0};

  AllocFaultPlan fault_plan_;
  std::atomic<uint64_t> fault_draws_{0};
  std::atomic<uint64_t> alloc_faults_injected_{0};

  // Delta bookkeeping for flush_stats_to_obs (registry counters are
  // cumulative; repeated flushes report only the increment).
  mutable uint64_t flushed_polls_ = 0;
  mutable uint64_t flushed_hits_ = 0;
  mutable uint64_t flushed_faults_ = 0;
};

}  // namespace polis
