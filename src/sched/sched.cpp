#include "sched/sched.hpp"

#include <algorithm>
#include <cmath>

#include "obs/obs.hpp"
#include "util/check.hpp"

namespace polis::sched {

double utilization(const std::vector<Task>& tasks) {
  double u = 0;
  for (const Task& t : tasks) {
    POLIS_CHECK_MSG(t.period > 0, "task " << t.name << " needs a period");
    u += t.wcet / t.period;
  }
  return u;
}

bool rm_utilization_test(const std::vector<Task>& tasks) {
  if (tasks.empty()) return true;
  const double n = static_cast<double>(tasks.size());
  return utilization(tasks) <= n * (std::pow(2.0, 1.0 / n) - 1.0);
}

std::optional<std::vector<double>> response_times(
    const std::vector<Task>& tasks) {
  OBS_SPAN(span, "sched.response_times", "pipeline");
  if (span.armed()) span.arg("tasks", tasks.size());
  static const auto analyses =
      obs::MetricsRegistry::global().counter("sched.analyses");
  static const auto infeasible =
      obs::MetricsRegistry::global().counter("sched.unschedulable");
  obs::MetricsRegistry::global().add(analyses, 1);
  const auto fail = [&] {
    obs::MetricsRegistry::global().add(infeasible, 1);
    if (span.armed()) span.arg("schedulable", false);
    return std::nullopt;
  };
  std::vector<double> r(tasks.size(), 0);
  for (size_t i = 0; i < tasks.size(); ++i) {
    const Task& ti = tasks[i];
    double R = ti.wcet;
    for (int iter = 0; iter < 10000; ++iter) {
      double next = ti.wcet + ti.jitter;
      for (size_t j = 0; j < i; ++j)
        next += std::ceil(R / tasks[j].period) * tasks[j].wcet;
      if (next == R) break;
      R = next;
      if (R > ti.effective_deadline()) return fail();
    }
    if (R > ti.effective_deadline()) return fail();
    r[i] = R;
  }
  if (span.armed()) span.arg("schedulable", true);
  return r;
}

bool edf_test(const std::vector<Task>& tasks) {
  bool constrained = false;
  double density = 0;
  for (const Task& t : tasks) {
    POLIS_CHECK(t.period > 0);
    const double d = t.effective_deadline();
    if (d < t.period) constrained = true;
    density += t.wcet / std::min(d, t.period);
  }
  (void)constrained;  // density test is exact for implicit deadlines
  return density <= 1.0;
}

std::vector<Task> inflate_for_faults(
    std::vector<Task> tasks, double exec_jitter,
    const std::map<std::string, long long>& stall_cycles) {
  for (Task& t : tasks) {
    if (exec_jitter > 0) t.wcet *= 1.0 + exec_jitter;
    auto stall = stall_cycles.find(t.name);
    if (stall != stall_cycles.end() && stall->second > 0)
      t.wcet += static_cast<double>(stall->second);
  }
  return tasks;
}

std::vector<Task> rate_monotonic_order(std::vector<Task> tasks) {
  std::stable_sort(tasks.begin(), tasks.end(),
                   [](const Task& a, const Task& b) {
                     return a.period < b.period;
                   });
  return tasks;
}

std::vector<Task> deadline_monotonic_order(std::vector<Task> tasks) {
  std::stable_sort(tasks.begin(), tasks.end(),
                   [](const Task& a, const Task& b) {
                     return a.effective_deadline() < b.effective_deadline();
                   });
  return tasks;
}

}  // namespace polis::sched
