// Real-time schedulability analysis (step 4 of the synthesis flow, §I-H):
// the WCET estimates produced by the s-graph estimator feed classical
// scheduling tests (Liu & Layland [24]; response-time analysis as in [18])
// to validate a scheduling policy before deployment, or to let an automatic
// RTOS generator choose one (§IV-A).
#pragma once

#include <map>
#include <optional>
#include <string>
#include <vector>

namespace polis::sched {

struct Task {
  std::string name;
  double wcet = 0;      // worst-case execution cycles (from the estimator)
  double period = 0;    // minimum inter-arrival of the triggering event
  double deadline = 0;  // relative deadline; 0 means deadline == period
  double jitter = 0;    // release jitter (e.g. polling delay)

  double effective_deadline() const { return deadline > 0 ? deadline : period; }
};

/// Total processor utilization Σ C_i / T_i.
double utilization(const std::vector<Task>& tasks);

/// Liu–Layland sufficient bound for rate-monotonic priorities:
/// U ≤ n(2^{1/n} − 1).
bool rm_utilization_test(const std::vector<Task>& tasks);

/// Exact response-time analysis for fixed priorities (tasks given highest
/// priority first): R_i = C_i + J_i + Σ_{j<i} ⌈R_i/T_j⌉ C_j, iterated to a
/// fixed point. Returns the response times, or nullopt if some task's
/// response exceeds its deadline (unschedulable) or the iteration diverges.
std::optional<std::vector<double>> response_times(
    const std::vector<Task>& tasks);

/// Necessary-and-sufficient EDF test for deadline==period task sets (U ≤ 1);
/// density test (sufficient) when deadlines are constrained.
bool edf_test(const std::vector<Task>& tasks);

/// Degraded-mode schedulability: the task set as the fault-injection layer
/// sees it. Execution jitter inflates every WCET by its bounded factor
/// (C_i *= 1 + j, matching rtos::FaultPlan::exec_jitter's worst draw) and a
/// designated stall adds its cycles to that task's WCET (the stall burns
/// CPU at dispatch). Feeding the result to the tests above answers "does
/// the policy still meet its deadlines at this fault magnitude" statically.
std::vector<Task> inflate_for_faults(
    std::vector<Task> tasks, double exec_jitter,
    const std::map<std::string, long long>& stall_cycles = {});

/// Orders tasks rate-monotonically (shorter period = higher priority).
std::vector<Task> rate_monotonic_order(std::vector<Task> tasks);

/// Orders tasks deadline-monotonically.
std::vector<Task> deadline_monotonic_order(std::vector<Task> tasks);

}  // namespace polis::sched
