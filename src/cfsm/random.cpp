#include "cfsm/random.hpp"

#include "util/check.hpp"

namespace polis::cfsm {

namespace {

// A random arithmetic operand over state vars, input values and constants.
expr::ExprRef random_operand(Rng& rng, const std::vector<Signal>& inputs,
                             const std::vector<StateVar>& state,
                             int max_domain) {
  std::vector<expr::ExprRef> pool;
  for (const Signal& s : inputs)
    if (!s.is_pure()) pool.push_back(value_of(s.name));
  for (const StateVar& v : state) pool.push_back(expr::var(v.name));
  if (pool.empty() || rng.flip(0.3))
    return expr::constant(rng.uniform(0, max_domain - 1));
  return pool[static_cast<size_t>(rng.uniform(0, static_cast<int>(pool.size()) - 1))];
}

expr::ExprRef random_value_expr(Rng& rng, const std::vector<Signal>& inputs,
                                const std::vector<StateVar>& state,
                                int max_domain) {
  const expr::ExprRef a = random_operand(rng, inputs, state, max_domain);
  if (rng.flip(0.4)) return a;
  const expr::ExprRef b = random_operand(rng, inputs, state, max_domain);
  switch (rng.uniform(0, 3)) {
    case 0: return expr::add(a, b);
    case 1: return expr::sub(a, b);
    case 2: return expr::mul(a, b);
    default: return expr::add(a, expr::constant(1));
  }
}

expr::ExprRef random_atom(Rng& rng, const std::vector<Signal>& inputs,
                          const std::vector<StateVar>& state, int max_domain) {
  // Presence atoms dominate (control-dominated domain).
  if (!inputs.empty() && rng.flip(0.55)) {
    const Signal& s = inputs[static_cast<size_t>(
        rng.uniform(0, static_cast<int>(inputs.size()) - 1))];
    return presence(s.name);
  }
  const expr::ExprRef a = random_operand(rng, inputs, state, max_domain);
  const expr::ExprRef b = random_operand(rng, inputs, state, max_domain);
  switch (rng.uniform(0, 3)) {
    case 0: return expr::eq(a, b);
    case 1: return expr::ne(a, b);
    case 2: return expr::lt(a, b);
    default: return expr::ge(a, b);
  }
}

expr::ExprRef random_guard(Rng& rng, const std::vector<Signal>& inputs,
                           const std::vector<StateVar>& state, int max_domain,
                           int max_atoms) {
  const int atoms = static_cast<int>(rng.uniform(1, max_atoms));
  expr::ExprRef g = random_atom(rng, inputs, state, max_domain);
  if (rng.flip(0.2)) g = expr::lnot(g);
  for (int i = 1; i < atoms; ++i) {
    expr::ExprRef a = random_atom(rng, inputs, state, max_domain);
    if (rng.flip(0.2)) a = expr::lnot(a);
    g = rng.flip() ? expr::land(g, a) : expr::lor(g, a);
  }
  return g;
}

}  // namespace

Cfsm random_cfsm(Rng& rng, const RandomCfsmOptions& o,
                 const std::string& name) {
  POLIS_CHECK(o.num_inputs >= 1 && o.num_outputs >= 1 && o.max_domain >= 2);

  std::vector<Signal> inputs;
  for (int i = 0; i < o.num_inputs; ++i) {
    const bool valued = rng.flip(0.5);
    inputs.push_back(Signal{
        "i" + std::to_string(i),
        valued ? static_cast<int>(rng.uniform(2, o.max_domain)) : 1});
  }
  std::vector<Signal> outputs;
  for (int i = 0; i < o.num_outputs; ++i) {
    const bool valued = rng.flip(0.4);
    outputs.push_back(Signal{
        "o" + std::to_string(i),
        valued ? static_cast<int>(rng.uniform(2, o.max_domain)) : 1});
  }
  std::vector<StateVar> state;
  for (int i = 0; i < o.num_state_vars; ++i) {
    const int dom = static_cast<int>(rng.uniform(2, o.max_domain));
    state.push_back(StateVar{"s" + std::to_string(i), dom,
                             rng.uniform(0, dom - 1)});
  }

  std::vector<Rule> rules;
  for (int r = 0; r < o.num_rules; ++r) {
    Rule rule;
    rule.guard =
        random_guard(rng, inputs, state, o.max_domain, o.max_guard_atoms);
    const int n_actions = static_cast<int>(rng.uniform(1, o.max_actions_per_rule));
    for (int a = 0; a < n_actions; ++a) {
      if (rng.flip() || state.empty()) {
        const Signal& sig = outputs[static_cast<size_t>(
            rng.uniform(0, static_cast<int>(outputs.size()) - 1))];
        rule.emits.push_back(Emit{
            sig.name, sig.is_pure() ? nullptr
                                    : random_value_expr(rng, inputs, state,
                                                        o.max_domain)});
      } else {
        const StateVar& sv = state[static_cast<size_t>(
            rng.uniform(0, static_cast<int>(state.size()) - 1))];
        rule.assigns.push_back(Assign{
            sv.name, random_value_expr(rng, inputs, state, o.max_domain)});
      }
    }
    // Deduplicate targets within the rule (a rule assigns each at most once).
    std::vector<Emit> emits;
    for (const Emit& e : rule.emits) {
      bool dup = false;
      for (const Emit& seen : emits) dup = dup || seen.signal == e.signal;
      if (!dup) emits.push_back(e);
    }
    rule.emits = emits;
    std::vector<Assign> assigns;
    for (const Assign& a : rule.assigns) {
      bool dup = false;
      for (const Assign& seen : assigns) dup = dup || seen.state_var == a.state_var;
      if (!dup) assigns.push_back(a);
    }
    rule.assigns = assigns;
    rules.push_back(std::move(rule));
  }

  return Cfsm(name, std::move(inputs), std::move(outputs), std::move(state),
              std::move(rules));
}

}  // namespace polis::cfsm
