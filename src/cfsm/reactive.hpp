// The mixed representation of a CFSM transition function (§III-B1):
//
//   * a set of *tests* on inputs and state (atomic predicates, e.g.
//     `present_c`, `a == v_c`), each abstracted by a Boolean test variable x;
//   * a set of *actions* (output emissions / state assignments), each
//     abstracted by a Boolean action variable z;
//   * the *reactive function* mapping test valuations to action valuations,
//     represented by its characteristic function χ(x*, z*) as a BDD (§II-C).
//
// An implicit "consume" action variable is set by every firing rule so the
// generated code can tell the RTOS whether the snapshot was consumed or must
// be preserved (§IV-D).
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <optional>
#include <string>
#include <utility>
#include <vector>

#include "bdd/bdd.hpp"
#include "cfsm/cfsm.hpp"
#include "expr/expr.hpp"

namespace polis::cfsm {

/// Predicate over the machine's concrete space: true iff the (snapshot,
/// state) combination should be *cared about* during s-graph minimisation.
/// Combinations rejected by the filter are treated as don't cares on top of
/// the local false-path analysis — verif::care_filters_by_machine produces
/// filters encoding network-level unreachability. Must be thread-safe
/// (synthesize_network evaluates filters from its worker threads).
/// The callable is held behind a shared_ptr: copying a filter (options
/// structs are copied once per synthesis worker) copies a pointer, not the
/// closure state, and the empty filter stays a pair of null pointers.
class CareFilter {
 public:
  using Fn = std::function<bool(const Snapshot&,
                                const std::map<std::string, std::int64_t>&)>;

  CareFilter() = default;
  CareFilter(Fn fn)
      : fn_(fn ? std::make_shared<const Fn>(std::move(fn)) : nullptr) {}

  explicit operator bool() const { return fn_ != nullptr; }
  bool operator()(const Snapshot& snapshot,
                  const std::map<std::string, std::int64_t>& state) const {
    return (*fn_)(snapshot, state);
  }

 private:
  std::shared_ptr<const Fn> fn_;
};

/// A Boolean abstraction of one atomic predicate appearing in the guards.
struct TestVariable {
  expr::ExprRef predicate;
  int bdd_var = -1;
  bool is_presence = false;  // a presence-flag test becomes an RTOS call
};

/// A Boolean abstraction of one action.
struct ActionVariable {
  enum class Kind { kEmit, kAssignState, kConsume };
  Kind kind = Kind::kEmit;
  std::string target;        // signal or state variable ("" for kConsume)
  expr::ExprRef value;       // emission value / assigned expr (may be null)
  int bdd_var = -1;

  std::string label() const;
};

/// Builds and owns the abstraction of one CFSM over a caller-supplied BDD
/// manager. Test variables are created before action variables, so the
/// initial (naive) order is "all inputs, then all outputs".
class ReactiveFunction {
 public:
  ReactiveFunction(const Cfsm& machine, bdd::BddManager& mgr);

  const Cfsm& machine() const { return *machine_; }
  bdd::BddManager& manager() const { return *mgr_; }
  const std::vector<TestVariable>& tests() const { return tests_; }
  const std::vector<ActionVariable>& actions() const { return actions_; }
  const bdd::Bdd& chi() const { return chi_; }

  /// The implicit consume action's BDD variable.
  int consume_var() const;

  bool is_test_var(int bdd_var) const;
  bool is_action_var(int bdd_var) const;
  const TestVariable& test_of(int bdd_var) const;
  const ActionVariable& action_of(int bdd_var) const;

  /// Output function g_z of one action variable (over test variables only):
  /// g_z = S_{z* \ z}(χ)|_{z=1}  (§II-C, Theorem 1).
  bdd::Bdd output_function(int action_bdd_var);

  /// Precedence pairs "(input, output)" for sifting constraints:
  /// every output after the inputs in its own support (§III-B3b)...
  std::vector<std::pair<int, int>> precedence_outputs_after_support();
  /// ...or every output after every input (the stricter variant of §V-A).
  std::vector<std::pair<int, int>> precedence_outputs_after_all_inputs() const;

  /// Valuation of the test variables for a concrete snapshot + state.
  std::vector<bool> test_valuation(
      const Snapshot& snapshot,
      const std::map<std::string, std::int64_t>& state) const;

  /// Decodes an action valuation (indexed like actions()) into a Reaction,
  /// evaluating emission/assignment expressions on the concrete inputs.
  Reaction decode_actions(
      const std::vector<bool>& action_values, const Snapshot& snapshot,
      const std::map<std::string, std::int64_t>& state) const;

  /// Reachable care set over the test variables: the disjunction of test
  /// valuations induced by every concrete (snapshot, state) combination.
  /// Enumerates the concrete space; returns nullopt if it exceeds `limit`
  /// combinations. Valuations outside the care set are false paths (§III-C).
  /// A non-null `filter` additionally drops combinations it rejects —
  /// network-level (global) don't cares on top of the local analysis.
  std::optional<bdd::Bdd> reachable_care_set(std::uint64_t limit = 1u << 22,
                                             const CareFilter& filter = {});

 private:
  int intern_test(const expr::ExprRef& predicate, bool is_presence);
  int intern_action(ActionVariable::Kind kind, const std::string& target,
                    const expr::ExprRef& value);
  bdd::Bdd guard_to_bdd(const expr::Expr& guard);
  expr::Env concrete_env(const Snapshot& snapshot,
                         const std::map<std::string, std::int64_t>& state) const;

  const Cfsm* machine_;
  bdd::BddManager* mgr_;
  std::vector<TestVariable> tests_;
  std::vector<ActionVariable> actions_;
  bdd::Bdd chi_;
};

}  // namespace polis::cfsm
