#include "cfsm/reactive.hpp"

#include <algorithm>

#include "util/check.hpp"

namespace polis::cfsm {

std::string ActionVariable::label() const {
  switch (kind) {
    case Kind::kEmit:
      return value == nullptr ? "emit_" + target
                              : "emit_" + target + "=" + expr::to_c(*value);
    case Kind::kAssignState:
      return target + ":=" + expr::to_c(*value);
    case Kind::kConsume:
      return "consume";
  }
  return "?";
}

namespace {

bool is_boolean_connective(expr::Op op) {
  return op == expr::Op::kAnd || op == expr::Op::kOr || op == expr::Op::kNot;
}

void collect_atomics(const expr::ExprRef& e,
                     std::vector<expr::ExprRef>& out) {
  if (e->op() == expr::Op::kConst) return;
  if (is_boolean_connective(e->op())) {
    for (const expr::ExprRef& a : e->args()) collect_atomics(a, out);
    return;
  }
  for (const expr::ExprRef& seen : out)
    if (expr::equal(*seen, *e)) return;
  out.push_back(e);
}

}  // namespace

ReactiveFunction::ReactiveFunction(const Cfsm& machine, bdd::BddManager& mgr)
    : machine_(&machine), mgr_(&mgr) {
  // Pass 1: intern every atomic test, in guard order, so all test variables
  // precede all action variables in the initial order.
  std::vector<expr::ExprRef> atomics;
  for (const Rule& r : machine.rules()) collect_atomics(r.guard, atomics);
  for (const expr::ExprRef& a : atomics) {
    bool is_presence = false;
    if (a->op() == expr::Op::kVar) {
      for (const Signal& s : machine.inputs()) {
        if (a->name() == presence_name(s.name)) {
          is_presence = true;
          break;
        }
      }
    }
    intern_test(a, is_presence);
  }

  // Pass 2: intern actions (rule order; the implicit consume action last).
  std::vector<std::vector<int>> rule_actions(machine.rules().size());
  for (size_t ri = 0; ri < machine.rules().size(); ++ri) {
    const Rule& r = machine.rules()[ri];
    for (const Emit& e : r.emits)
      rule_actions[ri].push_back(
          intern_action(ActionVariable::Kind::kEmit, e.signal, e.value));
    for (const Assign& a : r.assigns)
      rule_actions[ri].push_back(intern_action(
          ActionVariable::Kind::kAssignState, a.state_var, a.value));
  }
  const int consume =
      intern_action(ActionVariable::Kind::kConsume, "", nullptr);
  for (auto& ra : rule_actions) ra.push_back(consume);

  // Pass 3: χ = Σ_r  fire_r · cube(A_r)  +  (no rule) · cube(∅),
  // where fire_r = guard_r ∧ ¬guard_1 ∧ ... ∧ ¬guard_{r-1} encodes the
  // first-match priority of the rule list.
  auto cube = [&](const std::vector<int>& action_vars) {
    bdd::Bdd c = mgr_->one();
    for (const ActionVariable& av : actions_) {
      const bool on = std::find(action_vars.begin(), action_vars.end(),
                                av.bdd_var) != action_vars.end();
      c = c & (on ? mgr_->var(av.bdd_var) : mgr_->nvar(av.bdd_var));
    }
    return c;
  };

  bdd::Bdd chi = mgr_->zero();
  bdd::Bdd remaining = mgr_->one();
  for (size_t ri = 0; ri < machine.rules().size(); ++ri) {
    const bdd::Bdd g = guard_to_bdd(*machine.rules()[ri].guard);
    const bdd::Bdd fire = remaining & g;
    remaining = remaining & !g;
    chi = chi | (fire & cube(rule_actions[ri]));
  }
  chi = chi | (remaining & cube({}));
  chi_ = chi;
}

int ReactiveFunction::intern_test(const expr::ExprRef& predicate,
                                  bool is_presence) {
  for (const TestVariable& t : tests_)
    if (expr::equal(*t.predicate, *predicate)) return t.bdd_var;
  TestVariable t;
  t.predicate = predicate;
  t.is_presence = is_presence;
  t.bdd_var = mgr_->new_var(expr::to_c(*predicate));
  tests_.push_back(t);
  return t.bdd_var;
}

int ReactiveFunction::intern_action(ActionVariable::Kind kind,
                                    const std::string& target,
                                    const expr::ExprRef& value) {
  for (const ActionVariable& a : actions_) {
    if (a.kind != kind || a.target != target) continue;
    if (a.value == nullptr && value == nullptr) return a.bdd_var;
    if (a.value != nullptr && value != nullptr && expr::equal(*a.value, *value))
      return a.bdd_var;
  }
  ActionVariable a;
  a.kind = kind;
  a.target = target;
  a.value = value;
  a.bdd_var = mgr_->new_var(a.label());
  actions_.push_back(a);
  return a.bdd_var;
}

bdd::Bdd ReactiveFunction::guard_to_bdd(const expr::Expr& guard) {
  switch (guard.op()) {
    case expr::Op::kConst:
      return mgr_->constant(guard.value() != 0);
    case expr::Op::kAnd:
      return guard_to_bdd(*guard.args()[0]) & guard_to_bdd(*guard.args()[1]);
    case expr::Op::kOr:
      return guard_to_bdd(*guard.args()[0]) | guard_to_bdd(*guard.args()[1]);
    case expr::Op::kNot:
      return !guard_to_bdd(*guard.args()[0]);
    default: {
      for (const TestVariable& t : tests_) {
        if (expr::equal(*t.predicate, guard)) return mgr_->var(t.bdd_var);
      }
      POLIS_CHECK_MSG(false, "atomic predicate not interned: "
                                 << expr::to_c(guard));
      return mgr_->zero();
    }
  }
}

int ReactiveFunction::consume_var() const {
  for (const ActionVariable& a : actions_)
    if (a.kind == ActionVariable::Kind::kConsume) return a.bdd_var;
  POLIS_CHECK(false);
  return -1;
}

bool ReactiveFunction::is_test_var(int bdd_var) const {
  for (const TestVariable& t : tests_)
    if (t.bdd_var == bdd_var) return true;
  return false;
}

bool ReactiveFunction::is_action_var(int bdd_var) const {
  for (const ActionVariable& a : actions_)
    if (a.bdd_var == bdd_var) return true;
  return false;
}

const TestVariable& ReactiveFunction::test_of(int bdd_var) const {
  for (const TestVariable& t : tests_)
    if (t.bdd_var == bdd_var) return t;
  POLIS_CHECK_MSG(false, "not a test variable: " << bdd_var);
  return tests_.front();
}

const ActionVariable& ReactiveFunction::action_of(int bdd_var) const {
  for (const ActionVariable& a : actions_)
    if (a.bdd_var == bdd_var) return a;
  POLIS_CHECK_MSG(false, "not an action variable: " << bdd_var);
  return actions_.front();
}

bdd::Bdd ReactiveFunction::output_function(int action_bdd_var) {
  std::vector<int> others;
  for (const ActionVariable& a : actions_)
    if (a.bdd_var != action_bdd_var) others.push_back(a.bdd_var);
  return mgr_->cofactor(mgr_->smooth(chi_, others), action_bdd_var, true);
}

std::vector<std::pair<int, int>>
ReactiveFunction::precedence_outputs_after_support() {
  std::vector<std::pair<int, int>> pairs;
  for (const ActionVariable& a : actions_) {
    for (int v : mgr_->support(output_function(a.bdd_var))) {
      if (is_test_var(v)) pairs.emplace_back(v, a.bdd_var);
    }
  }
  return pairs;
}

std::vector<std::pair<int, int>>
ReactiveFunction::precedence_outputs_after_all_inputs() const {
  std::vector<std::pair<int, int>> pairs;
  for (const TestVariable& t : tests_)
    for (const ActionVariable& a : actions_)
      pairs.emplace_back(t.bdd_var, a.bdd_var);
  return pairs;
}

expr::Env ReactiveFunction::concrete_env(
    const Snapshot& snapshot,
    const std::map<std::string, std::int64_t>& state) const {
  return [this, &snapshot, &state](const std::string& name) -> std::int64_t {
    for (const Signal& s : machine_->inputs()) {
      if (name == presence_name(s.name)) return snapshot.is_present(s.name);
      if (!s.is_pure() && name == value_name(s.name))
        return snapshot.value_of(s.name);
    }
    auto it = state.find(name);
    POLIS_CHECK_MSG(it != state.end(),
                    machine_->name() << ": unbound variable " << name);
    return it->second;
  };
}

std::vector<bool> ReactiveFunction::test_valuation(
    const Snapshot& snapshot,
    const std::map<std::string, std::int64_t>& state) const {
  const expr::Env env = concrete_env(snapshot, state);
  std::vector<bool> out;
  out.reserve(tests_.size());
  for (const TestVariable& t : tests_)
    out.push_back(expr::evaluate(*t.predicate, env) != 0);
  return out;
}

Reaction ReactiveFunction::decode_actions(
    const std::vector<bool>& action_values, const Snapshot& snapshot,
    const std::map<std::string, std::int64_t>& state) const {
  POLIS_CHECK(action_values.size() == actions_.size());
  const expr::Env env = concrete_env(snapshot, state);
  Reaction out;
  out.next_state = state;
  for (size_t i = 0; i < actions_.size(); ++i) {
    if (!action_values[i]) continue;
    const ActionVariable& a = actions_[i];
    switch (a.kind) {
      case ActionVariable::Kind::kConsume:
        out.fired = true;
        break;
      case ActionVariable::Kind::kEmit: {
        const Signal* sig = machine_->find_output(a.target);
        const std::int64_t v =
            sig->is_pure()
                ? 0
                : wrap_to_domain(expr::evaluate(*a.value, env), sig->domain);
        out.emissions.emplace_back(a.target, v);
        break;
      }
      case ActionVariable::Kind::kAssignState: {
        const StateVar* sv = machine_->find_state(a.target);
        out.next_state[a.target] =
            wrap_to_domain(expr::evaluate(*a.value, env), sv->domain);
        break;
      }
    }
  }
  return out;
}

std::optional<bdd::Bdd> ReactiveFunction::reachable_care_set(
    std::uint64_t limit, const CareFilter& filter) {
  bdd::Bdd care = mgr_->zero();
  const bool complete = enumerate_concrete_space(
      *machine_, limit,
      [&](const Snapshot& snap, const std::map<std::string, std::int64_t>& st) {
        if (filter && !filter(snap, st)) return;
        const std::vector<bool> tv = test_valuation(snap, st);
        bdd::Bdd minterm = mgr_->one();
        for (size_t i = 0; i < tests_.size(); ++i) {
          minterm = minterm & (tv[i] ? mgr_->var(tests_[i].bdd_var)
                                     : mgr_->nvar(tests_[i].bdd_var));
        }
        care = care | minterm;
      });
  if (!complete) return std::nullopt;
  return care;
}

}  // namespace polis::cfsm
