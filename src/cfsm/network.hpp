// A globally-asynchronous locally-synchronous (GALS) network of CFSMs
// (§II-D). Instances are connected by named nets; every CFSM port is bound
// to a net (by default the net with the port's own name). Between each
// producer and each consumer there is conceptually a one-place event buffer:
// an event not yet detected when re-emitted is overwritten and lost.
#pragma once

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "cfsm/cfsm.hpp"

namespace polis::cfsm {

struct Instance {
  std::string name;
  std::shared_ptr<const Cfsm> machine;
  /// Formal port (input or output signal name of the machine) -> net name.
  std::map<std::string, std::string> bindings;

  /// Net a port is bound to (the port's own name when unbound).
  const std::string& net_of(const std::string& port) const;
};

/// Connectivity info for one net.
struct Net {
  std::string name;
  int domain = 1;
  std::vector<std::pair<std::string, std::string>> producers;  // inst, port
  std::vector<std::pair<std::string, std::string>> consumers;  // inst, port
};

class Network {
 public:
  explicit Network(std::string name) : name_(std::move(name)) {}

  const std::string& name() const { return name_; }

  /// Adds an instance; bindings may be partial (missing ports bind to nets
  /// named after the port).
  void add_instance(std::string instance_name,
                    std::shared_ptr<const Cfsm> machine,
                    std::map<std::string, std::string> bindings = {});

  const std::vector<Instance>& instances() const { return instances_; }
  const Instance& instance(const std::string& name) const;

  /// Net table derived from the bindings; validates domain consistency.
  std::map<std::string, Net> nets() const;

  /// Nets with no producer inside the network (the environment drives them).
  std::vector<std::string> external_inputs() const;
  /// Nets produced inside and consumed inside.
  std::vector<std::string> internal_nets() const;
  /// Nets produced inside but not consumed inside (observed by environment).
  std::vector<std::string> external_outputs() const;

  /// Producer→consumer instance pairs induced by the nets, deduplicated,
  /// in deterministic (net-name, then declaration) order. Self-loops are
  /// included; topological_order() rejects them.
  std::vector<std::pair<std::string, std::string>> instance_edges() const;

  /// Topological order of instances along internal nets; empty if the
  /// internal-signal graph has a cycle.
  std::vector<std::string> topological_order() const;

 private:
  std::string name_;
  std::vector<Instance> instances_;
};

}  // namespace polis::cfsm
