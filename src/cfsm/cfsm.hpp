// Codesign Finite State Machines (CFSMs, §II-D).
//
// A CFSM reacts to a snapshot of input events (each event is a presence flag
// plus, for valued events, a value over a finite domain) by possibly emitting
// output events and updating state variables. The transition function is
// given as a priority-ordered list of rules; the first rule whose guard holds
// fires. If no rule fires, the reaction is empty and — per §IV-D — the RTOS
// preserves the input events for the next execution.
//
// Expression-variable naming convention (mirrors the paper's `present_c`,
// `?c` and Fig. 1):
//   presence flag of signal s  ->  "present_" + s
//   value of valued signal s   ->  "v_" + s
//   state variable a           ->  "a"
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <optional>
#include <string>
#include <vector>

#include "expr/expr.hpp"

namespace polis::cfsm {

/// An event carrier. `domain` is the number of values the event can carry;
/// a pure event (alarm, reset, ...) has domain 1 (presence only).
struct Signal {
  std::string name;
  int domain = 1;

  bool is_pure() const { return domain <= 1; }
};

/// A state variable over the finite domain 0..domain-1.
struct StateVar {
  std::string name;
  int domain = 2;
  std::int64_t init = 0;
};

/// Emission of an output event; `value` is null for pure signals.
struct Emit {
  std::string signal;
  expr::ExprRef value;  // may be null (pure)
};

/// Synchronous assignment to a state variable (next-state value; all rules
/// read the pre-reaction state).
struct Assign {
  std::string state_var;
  expr::ExprRef value;
};

/// One transition rule: when `guard` holds over the current snapshot and
/// state, perform the emissions and assignments.
struct Rule {
  expr::ExprRef guard;
  std::vector<Emit> emits;
  std::vector<Assign> assigns;
};

/// A module-level safety property over the machine's inputs and state
/// (same variable convention as guards): the verifier checks it against
/// every reachable network state, reading absent signals as presence 0 /
/// value 0. `line` is the source line of the `assert` clause (0 when the
/// machine was built programmatically).
struct Assertion {
  expr::ExprRef expr;
  int line = 0;
};

/// Presence/value snapshot of the inputs of one CFSM at reaction time.
struct Snapshot {
  std::map<std::string, bool> present;
  std::map<std::string, std::int64_t> value;

  bool is_present(const std::string& sig) const {
    auto it = present.find(sig);
    return it != present.end() && it->second;
  }
  std::int64_t value_of(const std::string& sig) const {
    auto it = value.find(sig);
    return it == value.end() ? 0 : it->second;
  }
};

/// Result of one reaction.
struct Reaction {
  bool fired = false;  // some rule matched (events are consumed iff true)
  std::vector<std::pair<std::string, std::int64_t>> emissions;  // sig, value
  std::map<std::string, std::int64_t> next_state;
};

/// Helpers producing the conventional expression variables.
expr::ExprRef presence(const std::string& signal);
expr::ExprRef value_of(const std::string& signal);
std::string presence_name(const std::string& signal);
std::string value_name(const std::string& signal);

/// A single CFSM: interface, state and transition rules.
class Cfsm {
 public:
  Cfsm(std::string name, std::vector<Signal> inputs,
       std::vector<Signal> outputs, std::vector<StateVar> state,
       std::vector<Rule> rules, std::vector<Assertion> assertions = {});

  const std::string& name() const { return name_; }
  const std::vector<Signal>& inputs() const { return inputs_; }
  const std::vector<Signal>& outputs() const { return outputs_; }
  const std::vector<StateVar>& state() const { return state_; }
  const std::vector<Rule>& rules() const { return rules_; }
  const std::vector<Assertion>& assertions() const { return assertions_; }

  const Signal* find_input(const std::string& name) const;
  const Signal* find_output(const std::string& name) const;
  const StateVar* find_state(const std::string& name) const;

  /// Initial state valuation.
  std::map<std::string, std::int64_t> initial_state() const;

  /// Reference semantics: evaluates the transition function on one snapshot.
  /// State variables not assigned by the firing rule keep their value.
  /// Values are clamped into the variable's domain (modulo), matching the
  /// bounded-integer restriction of the paper's domain (§I-D).
  Reaction react(const Snapshot& snapshot,
                 const std::map<std::string, std::int64_t>& state) const;

 private:
  void validate() const;

  std::string name_;
  std::vector<Signal> inputs_;
  std::vector<Signal> outputs_;
  std::vector<StateVar> state_;
  std::vector<Rule> rules_;
  std::vector<Assertion> assertions_;
};

/// Wraps a value into [0, domain).
std::int64_t wrap_to_domain(std::int64_t v, int domain);

/// Enumerates the machine's whole concrete space — every combination of
/// input presence flags, valued-input values and state-variable values —
/// calling `visit(snapshot, state)` for each. Returns false (without calling
/// `visit`) if the space exceeds `limit` combinations. Shared by false-path
/// (care set) computation, VM timing measurement and exhaustive testing.
bool enumerate_concrete_space(
    const Cfsm& machine, std::uint64_t limit,
    const std::function<void(const Snapshot&,
                             const std::map<std::string, std::int64_t>&)>&
        visit);

}  // namespace polis::cfsm
