// Deterministic random CFSM generation, used for:
//   * the calibration corpus ("sample benchmark programs", §III-C1);
//   * property-based testing of Theorem 1 (reference semantics vs s-graph
//     vs VM execution) across orderings;
//   * BDD/sifting workload sweeps.
#pragma once

#include "cfsm/cfsm.hpp"
#include "util/rng.hpp"

namespace polis::cfsm {

struct RandomCfsmOptions {
  int num_inputs = 3;        // signals; roughly half will be valued
  int num_outputs = 2;
  int num_state_vars = 2;
  int max_domain = 4;        // valued signals / state vars: domain 2..max
  int num_rules = 4;
  int max_guard_atoms = 3;   // atoms combined with &&/||/! per guard
  int max_actions_per_rule = 3;
};

/// Generates a valid CFSM. The same seed always yields the same machine.
Cfsm random_cfsm(Rng& rng, const RandomCfsmOptions& options = {},
                 const std::string& name = "rand");

}  // namespace polis::cfsm
