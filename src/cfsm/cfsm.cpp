#include "cfsm/cfsm.hpp"

#include <algorithm>
#include <set>

#include "util/check.hpp"

namespace polis::cfsm {

expr::ExprRef presence(const std::string& signal) {
  return expr::var(presence_name(signal));
}

expr::ExprRef value_of(const std::string& signal) {
  return expr::var(value_name(signal));
}

std::string presence_name(const std::string& signal) {
  return "present_" + signal;
}

std::string value_name(const std::string& signal) { return "v_" + signal; }

std::int64_t wrap_to_domain(std::int64_t v, int domain) {
  if (domain <= 1) return 0;
  std::int64_t m = v % domain;
  if (m < 0) m += domain;
  return m;
}

Cfsm::Cfsm(std::string name, std::vector<Signal> inputs,
           std::vector<Signal> outputs, std::vector<StateVar> state,
           std::vector<Rule> rules, std::vector<Assertion> assertions)
    : name_(std::move(name)),
      inputs_(std::move(inputs)),
      outputs_(std::move(outputs)),
      state_(std::move(state)),
      rules_(std::move(rules)),
      assertions_(std::move(assertions)) {
  validate();
}

namespace {

template <typename T>
const T* find_by_name(const std::vector<T>& items, const std::string& name) {
  for (const T& item : items)
    if (item.name == name) return &item;
  return nullptr;
}

}  // namespace

const Signal* Cfsm::find_input(const std::string& name) const {
  return find_by_name(inputs_, name);
}

const Signal* Cfsm::find_output(const std::string& name) const {
  return find_by_name(outputs_, name);
}

const StateVar* Cfsm::find_state(const std::string& name) const {
  return find_by_name(state_, name);
}

void Cfsm::validate() const {
  std::set<std::string> legal_vars;
  std::set<std::string> names;
  for (const Signal& s : inputs_) {
    POLIS_CHECK_MSG(names.insert(s.name).second,
                    name_ << ": duplicate signal " << s.name);
    legal_vars.insert(presence_name(s.name));
    if (!s.is_pure()) legal_vars.insert(value_name(s.name));
  }
  for (const Signal& s : outputs_) {
    POLIS_CHECK_MSG(names.insert(s.name).second,
                    name_ << ": duplicate signal " << s.name);
  }
  for (const StateVar& v : state_) {
    POLIS_CHECK_MSG(names.insert(v.name).second,
                    name_ << ": duplicate name " << v.name);
    POLIS_CHECK_MSG(v.domain >= 1, name_ << ": state " << v.name
                                          << " needs a positive domain");
    POLIS_CHECK_MSG(v.init >= 0 && v.init < v.domain,
                    name_ << ": init of " << v.name << " out of domain");
    legal_vars.insert(v.name);
  }

  auto check_expr = [&](const expr::ExprRef& e, const char* where) {
    POLIS_CHECK_MSG(e != nullptr, name_ << ": null expression in " << where);
    for (const std::string& v : expr::support(*e)) {
      POLIS_CHECK_MSG(legal_vars.count(v) != 0,
                      name_ << ": unknown variable '" << v << "' in " << where);
    }
  };

  for (const Rule& r : rules_) {
    check_expr(r.guard, "guard");
    for (const Emit& e : r.emits) {
      const Signal* sig = find_output(e.signal);
      POLIS_CHECK_MSG(sig != nullptr,
                      name_ << ": emit of undeclared output " << e.signal);
      if (sig->is_pure()) {
        POLIS_CHECK_MSG(e.value == nullptr,
                        name_ << ": pure output " << e.signal
                              << " emitted with a value");
      } else {
        POLIS_CHECK_MSG(e.value != nullptr,
                        name_ << ": valued output " << e.signal
                              << " emitted without a value");
        check_expr(e.value, "emission value");
      }
    }
    for (const Assign& a : r.assigns) {
      POLIS_CHECK_MSG(find_state(a.state_var) != nullptr,
                      name_ << ": assignment to undeclared state "
                            << a.state_var);
      check_expr(a.value, "state assignment");
    }
  }
  for (const Assertion& a : assertions_) check_expr(a.expr, "assert");
}

std::map<std::string, std::int64_t> Cfsm::initial_state() const {
  std::map<std::string, std::int64_t> st;
  for (const StateVar& v : state_) st[v.name] = v.init;
  return st;
}

Reaction Cfsm::react(const Snapshot& snapshot,
                     const std::map<std::string, std::int64_t>& state) const {
  const expr::Env env = [&](const std::string& name) -> std::int64_t {
    for (const Signal& s : inputs_) {
      if (name == presence_name(s.name)) return snapshot.is_present(s.name);
      if (!s.is_pure() && name == value_name(s.name))
        return snapshot.value_of(s.name);
    }
    auto it = state.find(name);
    POLIS_CHECK_MSG(it != state.end(), name_ << ": unbound variable " << name);
    return it->second;
  };

  Reaction out;
  out.next_state = state;
  for (const Rule& r : rules_) {
    if (expr::evaluate(*r.guard, env) == 0) continue;
    out.fired = true;
    for (const Emit& e : r.emits) {
      const Signal* sig = find_output(e.signal);
      const std::int64_t v =
          sig->is_pure() ? 0
                         : wrap_to_domain(expr::evaluate(*e.value, env),
                                          sig->domain);
      out.emissions.emplace_back(e.signal, v);
    }
    for (const Assign& a : r.assigns) {
      const StateVar* sv = find_state(a.state_var);
      out.next_state[a.state_var] =
          wrap_to_domain(expr::evaluate(*a.value, env), sv->domain);
    }
    return out;  // first matching rule fires (priority order)
  }
  return out;  // empty reaction
}

bool enumerate_concrete_space(
    const Cfsm& machine, std::uint64_t limit,
    const std::function<void(const Snapshot&,
                             const std::map<std::string, std::int64_t>&)>&
        visit) {
  struct Dim {
    enum class Kind { kPresence, kValue, kState } kind;
    std::string name;
    std::uint64_t radix;
  };
  std::vector<Dim> dims;
  std::uint64_t total = 1;
  for (const Signal& s : machine.inputs()) {
    dims.push_back({Dim::Kind::kPresence, s.name, 2});
    total *= 2;
    if (!s.is_pure()) {
      dims.push_back({Dim::Kind::kValue, s.name,
                      static_cast<std::uint64_t>(s.domain)});
      total *= static_cast<std::uint64_t>(s.domain);
    }
    if (total > limit) return false;
  }
  for (const StateVar& v : machine.state()) {
    dims.push_back({Dim::Kind::kState, v.name,
                    static_cast<std::uint64_t>(v.domain)});
    total *= static_cast<std::uint64_t>(v.domain);
    if (total > limit) return false;
  }

  std::vector<std::uint64_t> counter(dims.size(), 0);
  Snapshot snap;
  std::map<std::string, std::int64_t> st;
  for (std::uint64_t iter = 0; iter < total; ++iter) {
    for (size_t d = 0; d < dims.size(); ++d) {
      switch (dims[d].kind) {
        case Dim::Kind::kPresence:
          snap.present[dims[d].name] = counter[d] != 0;
          break;
        case Dim::Kind::kValue:
          snap.value[dims[d].name] = static_cast<std::int64_t>(counter[d]);
          break;
        case Dim::Kind::kState:
          st[dims[d].name] = static_cast<std::int64_t>(counter[d]);
          break;
      }
    }
    visit(snap, st);
    for (size_t d = 0; d < dims.size(); ++d) {  // mixed-radix increment
      if (++counter[d] < dims[d].radix) break;
      counter[d] = 0;
    }
  }
  return true;
}

}  // namespace polis::cfsm
