#include "cfsm/network.hpp"

#include <algorithm>
#include <set>

#include "util/check.hpp"

namespace polis::cfsm {

const std::string& Instance::net_of(const std::string& port) const {
  auto it = bindings.find(port);
  return it == bindings.end() ? port : it->second;
}

void Network::add_instance(std::string instance_name,
                           std::shared_ptr<const Cfsm> machine,
                           std::map<std::string, std::string> bindings) {
  POLIS_CHECK(machine != nullptr);
  for (const Instance& inst : instances_)
    POLIS_CHECK_MSG(inst.name != instance_name,
                    "duplicate instance " << instance_name);
  for (const auto& [port, net] : bindings) {
    POLIS_CHECK_MSG(machine->find_input(port) != nullptr ||
                        machine->find_output(port) != nullptr,
                    instance_name << ": binding of unknown port " << port);
    POLIS_CHECK(!net.empty());
  }
  instances_.push_back(
      Instance{std::move(instance_name), std::move(machine), std::move(bindings)});
}

const Instance& Network::instance(const std::string& name) const {
  for (const Instance& inst : instances_)
    if (inst.name == name) return inst;
  POLIS_CHECK_MSG(false, "no instance named " << name);
  return instances_.front();
}

std::map<std::string, Net> Network::nets() const {
  std::map<std::string, Net> table;
  auto touch = [&table](const std::string& net_name, const Signal& port)
      -> Net& {
    auto [it, inserted] = table.emplace(net_name, Net{net_name, port.domain, {}, {}});
    if (!inserted) {
      POLIS_CHECK_MSG(it->second.domain == port.domain,
                      "net " << net_name << " connects ports of domains "
                             << it->second.domain << " and " << port.domain);
    }
    return it->second;
  };
  for (const Instance& inst : instances_) {
    for (const Signal& s : inst.machine->inputs())
      touch(inst.net_of(s.name), s).consumers.emplace_back(inst.name, s.name);
    for (const Signal& s : inst.machine->outputs())
      touch(inst.net_of(s.name), s).producers.emplace_back(inst.name, s.name);
  }
  return table;
}

std::vector<std::string> Network::external_inputs() const {
  std::vector<std::string> out;
  for (const auto& [name, net] : nets())
    if (net.producers.empty() && !net.consumers.empty()) out.push_back(name);
  return out;
}

std::vector<std::string> Network::internal_nets() const {
  std::vector<std::string> out;
  for (const auto& [name, net] : nets())
    if (!net.producers.empty() && !net.consumers.empty()) out.push_back(name);
  return out;
}

std::vector<std::string> Network::external_outputs() const {
  std::vector<std::string> out;
  for (const auto& [name, net] : nets())
    if (!net.producers.empty() && net.consumers.empty()) out.push_back(name);
  return out;
}

std::vector<std::pair<std::string, std::string>> Network::instance_edges()
    const {
  std::vector<std::pair<std::string, std::string>> edges;
  std::set<std::pair<std::string, std::string>> seen;
  for (const auto& [name, net] : nets()) {
    (void)name;
    for (const auto& [pi, pp] : net.producers) {
      (void)pp;
      for (const auto& [ci, cp] : net.consumers) {
        (void)cp;
        if (seen.emplace(pi, ci).second) edges.emplace_back(pi, ci);
      }
    }
  }
  return edges;
}

std::vector<std::string> Network::topological_order() const {
  // Edge u -> v when some net produced by u is consumed by v.
  std::map<std::string, std::set<std::string>> succ;
  std::map<std::string, int> indegree;
  for (const Instance& inst : instances_) indegree[inst.name] = 0;
  for (const auto& [pi, ci] : instance_edges()) {
    if (pi == ci) return {};  // self-loop
    if (succ[pi].insert(ci).second) indegree[ci]++;
  }
  // Kahn's algorithm; ties broken by declaration order for determinism.
  std::map<std::string, size_t> decl;
  for (size_t i = 0; i < instances_.size(); ++i) decl[instances_[i].name] = i;
  auto by_decl = [&decl](const std::string& a, const std::string& b) {
    return decl[a] < decl[b];
  };
  std::set<std::string, decltype(by_decl)> ready(by_decl);
  for (const Instance& inst : instances_)
    if (indegree[inst.name] == 0) ready.insert(inst.name);
  std::vector<std::string> order;
  while (!ready.empty()) {
    const std::string u = *ready.begin();
    ready.erase(ready.begin());
    order.push_back(u);
    for (const std::string& v : succ[u])
      if (--indegree[v] == 0) ready.insert(v);
  }
  if (order.size() != instances_.size()) return {};  // cycle
  return order;
}

}  // namespace polis::cfsm
