#include "codegen/c_codegen.hpp"

#include <map>
#include <set>
#include <sstream>

#include "sgraph/dataflow.hpp"
#include "util/check.hpp"
#include "util/strings.hpp"

namespace polis::codegen {

namespace {

// How expression variables map into the generated C frame.
struct FrameNaming {
  // Presence flag of formal port -> net name (RTOS detect argument).
  std::map<std::string, std::string> presence_to_net;
  // Value variable of formal port -> net name.
  std::map<std::string, std::string> value_to_net;
  // State variable -> emitted global name (possibly instance-prefixed).
  std::map<std::string, std::string> state_global;
  // State variables that read a copy-in local instead of the global.
  std::set<std::string> buffered;
  // Values come from polis_value(SIG_net) (RTOS) or from plain globals
  // (standalone harness).
  bool rtos_values = true;
};

FrameNaming naming_for(const cfsm::Cfsm& machine,
                       const cfsm::Instance* instance, bool rtos_values) {
  FrameNaming naming;
  naming.rtos_values = rtos_values;
  const std::string prefix =
      instance != nullptr ? c_identifier(instance->name) + "__" : "";
  for (const cfsm::StateVar& v : machine.state())
    naming.state_global[v.name] = prefix + c_identifier(v.name);
  for (const cfsm::Signal& s : machine.inputs()) {
    const std::string net =
        instance != nullptr ? instance->net_of(s.name) : s.name;
    naming.presence_to_net[cfsm::presence_name(s.name)] = net;
    if (!s.is_pure()) naming.value_to_net[cfsm::value_name(s.name)] = net;
  }
  return naming;
}

// Rewrites expression variables into the C frame's names.
class NameMap {
 public:
  explicit NameMap(FrameNaming naming) : naming_(std::move(naming)) {}

  std::string rewrite(const expr::Expr& e) const {
    return expr::to_c(*rewrite_ref(e));
  }

  const FrameNaming& naming() const { return naming_; }

 private:
  expr::ExprRef rewrite_ref(const expr::Expr& e) const {
    switch (e.op()) {
      case expr::Op::kConst:
        return expr::constant(e.value());
      case expr::Op::kVar: {
        auto presence = naming_.presence_to_net.find(e.name());
        if (presence != naming_.presence_to_net.end())
          return expr::var("polis_detect(SIG_" +
                           c_identifier(presence->second) + ")");
        auto value = naming_.value_to_net.find(e.name());
        if (value != naming_.value_to_net.end()) {
          if (naming_.rtos_values)
            return expr::var("polis_value(SIG_" +
                             c_identifier(value->second) + ")");
          return expr::var(c_identifier(cfsm::value_name(value->second)));
        }
        auto state = naming_.state_global.find(e.name());
        if (state != naming_.state_global.end()) {
          if (naming_.buffered.count(e.name()) != 0)
            return expr::var(state->second + "__in");
          return expr::var(state->second);
        }
        return expr::var(c_identifier(e.name()));
      }
      default: {
        std::vector<expr::ExprRef> args;
        for (const expr::ExprRef& a : e.args())
          args.push_back(rewrite_ref(*a));
        return expr::Expr::make(e.op(), std::move(args));
      }
    }
  }

  FrameNaming naming_;
};

void emit_action(const sgraph::ActionOp& op, const cfsm::Cfsm& machine,
                 const cfsm::Instance* instance, const NameMap& names,
                 bool string_signals, std::ostringstream& os) {
  const std::string net =
      instance != nullptr && op.kind != sgraph::ActionOp::Kind::kConsume &&
              op.kind != sgraph::ActionOp::Kind::kAssignVar
          ? instance->net_of(op.target)
          : op.target;
  const std::string sig_ref =
      string_signals ? "\"" + net + "\"" : "SIG_" + c_identifier(net);
  switch (op.kind) {
    case sgraph::ActionOp::Kind::kConsume:
      os << "polis_consume();";
      break;
    case sgraph::ActionOp::Kind::kEmitPure:
      os << "polis_emit(" << sig_ref << ");";
      break;
    case sgraph::ActionOp::Kind::kEmitValued: {
      const cfsm::Signal* sig = machine.find_output(op.target);
      os << "polis_emit_value(" << sig_ref << ", polis_wrap("
         << names.rewrite(*op.value) << ", " << sig->domain << "));";
      break;
    }
    case sgraph::ActionOp::Kind::kAssignVar: {
      const cfsm::StateVar* sv = machine.find_state(op.target);
      os << names.naming().state_global.at(op.target) << " = polis_wrap("
         << names.rewrite(*op.value) << ", " << sv->domain << ");";
      break;
    }
  }
}

std::string routine_body(const sgraph::Sgraph& graph,
                         const cfsm::Cfsm& machine,
                         const cfsm::Instance* instance,
                         const CCodegenOptions& options, bool string_signals,
                         bool rtos_values) {
  FrameNaming naming = naming_for(machine, instance, rtos_values);
  for (const cfsm::StateVar& v : machine.state())
    naming.buffered.insert(v.name);
  if (options.optimize_copy_in)
    naming.buffered = sgraph::vars_needing_copy_in(graph, naming.buffered);
  const NameMap names(naming);
  std::ostringstream os;

  // Copy-in of state variables (§V-B safe next-state buffering), limited to
  // the hazardous ones when the data-flow optimization is on.
  for (const cfsm::StateVar& v : machine.state())
    if (naming.buffered.count(v.name) != 0)
      os << "  long " << naming.state_global.at(v.name) << "__in = "
         << naming.state_global.at(v.name) << ";\n";

  const std::vector<sgraph::NodeId> layout = graph.topo_order();
  // Label every vertex that is some vertex's non-fall-through successor.
  std::set<sgraph::NodeId> labelled;
  for (size_t i = 0; i < layout.size(); ++i) {
    const sgraph::Node& n = graph.node(layout[i]);
    const sgraph::NodeId fall =
        i + 1 < layout.size() ? layout[i + 1] : graph.end();
    switch (n.kind) {
      case sgraph::Kind::kBegin:
      case sgraph::Kind::kAssign:
        if (n.next != fall) labelled.insert(n.next);
        break;
      case sgraph::Kind::kTest:
        labelled.insert(n.when_false);
        if (n.when_true != fall) labelled.insert(n.when_true);
        break;
      case sgraph::Kind::kEnd:
        break;
    }
  }

  for (size_t i = 1; i < layout.size(); ++i) {
    const sgraph::NodeId id = layout[i];
    const sgraph::Node& n = graph.node(id);
    const sgraph::NodeId fall =
        i + 1 < layout.size() ? layout[i + 1] : graph.end();
    if (labelled.count(id) != 0) os << "L" << id << ":\n";
    if (options.provenance_comments)
      os << "  /* s-graph vertex " << id << " */\n";
    switch (n.kind) {
      case sgraph::Kind::kEnd:
        os << "  return;\n";
        break;
      case sgraph::Kind::kTest:
        os << "  if (!(" << names.rewrite(*n.predicate) << ")) goto L"
           << n.when_false << ";\n";
        if (n.when_true != fall) os << "  goto L" << n.when_true << ";\n";
        break;
      case sgraph::Kind::kAssign: {
        os << "  ";
        if (n.condition != nullptr)
          os << "if (" << names.rewrite(*n.condition) << ") ";
        emit_action(n.action, machine, instance, names, string_signals, os);
        os << "\n";
        if (n.next != fall) os << "  goto L" << n.next << ";\n";
        break;
      }
      case sgraph::Kind::kBegin:
        POLIS_CHECK(false);
        break;
    }
  }
  return os.str();
}

std::string state_globals(const cfsm::Cfsm& machine,
                          const cfsm::Instance* instance,
                          const char* storage) {
  std::ostringstream os;
  const FrameNaming naming = naming_for(machine, instance, true);
  for (const cfsm::StateVar& v : machine.state())
    os << storage << "long " << naming.state_global.at(v.name) << " = "
       << v.init << ";\n";
  return os.str();
}

std::string signal_enum(const cfsm::Cfsm& machine) {
  std::ostringstream os;
  os << "enum {";
  bool first = true;
  for (const cfsm::Signal& s : machine.inputs()) {
    os << (first ? " " : ", ") << "SIG_" << c_identifier(s.name);
    first = false;
  }
  for (const cfsm::Signal& s : machine.outputs()) {
    os << (first ? " " : ", ") << "SIG_" << c_identifier(s.name);
    first = false;
  }
  os << " };\n";
  return os.str();
}

}  // namespace

std::string generate_c(const sgraph::Sgraph& graph, const cfsm::Cfsm& machine,
                       const CCodegenOptions& options) {
  std::ostringstream os;
  os << "/* Synthesized reaction routine for CFSM '" << machine.name()
     << "'.\n * Generated from an s-graph with " << graph.num_reachable()
     << " vertices; do not edit. */\n";
  os << "#include \"polis_rt.h\"\n\n";
  os << state_globals(machine, nullptr, "");
  os << "\nvoid cfsm_" << c_identifier(machine.name()) << "(void) {\n"
     << routine_body(graph, machine, nullptr, options,
                     /*string_signals=*/false, /*rtos_values=*/true)
     << "}\n";
  return os.str();
}

std::string generate_instance_c(const sgraph::Sgraph& graph,
                                const cfsm::Instance& instance,
                                const CCodegenOptions& options) {
  const cfsm::Cfsm& machine = *instance.machine;
  std::ostringstream os;
  os << "/* Synthesized reaction routine for instance '" << instance.name
     << "' of CFSM '" << machine.name() << "'.\n * Ports are bound to nets; "
     << "state lives in instance-prefixed globals. Do not edit. */\n";
  os << "#include \"polis_rt.h\"\n\n";
  os << state_globals(machine, &instance, "static ");
  os << "\nvoid cfsm_" << c_identifier(instance.name) << "(void) {\n"
     << routine_body(graph, machine, &instance, options,
                     /*string_signals=*/false, /*rtos_values=*/true)
     << "}\n";
  return os.str();
}

std::string generate_standalone_c(const sgraph::Sgraph& graph,
                                  const cfsm::Cfsm& machine,
                                  const CCodegenOptions& options) {
  std::ostringstream os;
  os << "/* Standalone synthesized program for CFSM '" << machine.name()
     << "' (test harness included). */\n"
     << "#include <stdio.h>\n#include <stdlib.h>\n\n";
  os << signal_enum(machine);
  os << R"(
static int polis_present[64];
static int polis_consumed = 0;
static long polis_wrap(long v, long d) {
  if (d <= 1) return 0;
  long m = v % d;
  return m < 0 ? m + d : m;
}
static int polis_detect(int sig) { return polis_present[sig]; }
static void polis_emit(const char *sig) { printf("emit %s\n", sig); }
static void polis_emit_value(const char *sig, long v) {
  printf("emit %s %ld\n", sig, v);
}
static void polis_consume(void) { polis_consumed = 1; }
)";
  for (const cfsm::StateVar& v : machine.state())
    os << "static long " << c_identifier(v.name) << " = " << v.init << ";\n";
  for (const cfsm::Signal& s : machine.inputs())
    if (!s.is_pure())
      os << "static long " << c_identifier(cfsm::value_name(s.name))
         << " = 0;\n";

  os << "\nstatic void reaction(void) {\n"
     << routine_body(graph, machine, nullptr, options,
                     /*string_signals=*/true, /*rtos_values=*/false)
     << "}\n\n";

  // main(): presence flags, then valued-input values, then state values.
  os << "int main(int argc, char **argv) {\n  int arg = 1;\n"
     << "  (void)argc;\n";
  for (const cfsm::Signal& s : machine.inputs())
    os << "  polis_present[SIG_" << c_identifier(s.name)
       << "] = atoi(argv[arg++]);\n";
  for (const cfsm::Signal& s : machine.inputs())
    if (!s.is_pure())
      os << "  " << c_identifier(cfsm::value_name(s.name))
         << " = atol(argv[arg++]);\n";
  for (const cfsm::StateVar& v : machine.state())
    os << "  " << c_identifier(v.name) << " = atol(argv[arg++]);\n";
  os << "  reaction();\n"
     << "  printf(\"fired %d\\n\", polis_consumed);\n";
  for (const cfsm::StateVar& v : machine.state())
    os << "  printf(\"state " << v.name << " %ld\\n\", "
       << c_identifier(v.name) << ");\n";
  os << "  return 0;\n}\n";
  return os.str();
}

}  // namespace polis::codegen
