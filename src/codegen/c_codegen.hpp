// Translation of an s-graph into C (§III-B4).
//
// Each vertex maps to one C statement: a TEST becomes an `if` plus `goto`s,
// an ASSIGN becomes an assignment or an RTOS call. The result is the
// deliberately unstructured, "portable assembly" style the paper describes —
// unreadable but tightly predictable, so that a general-purpose C compiler
// cannot undo the BDD-level optimisations.
//
// Two flavours are produced:
//   * `generate_c`           — the reaction routine against the RTOS API
//                              (polis_rt.h, produced by rtos/codegen);
//   * `generate_standalone_c`— a self-contained translation unit with an
//                              inline mini-runtime and a main() that reads a
//                              snapshot from argv and prints the reaction;
//                              used by the end-to-end tests that compile the
//                              emitted C with the host compiler and compare
//                              against the reference semantics.
#pragma once

#include <string>

#include "cfsm/cfsm.hpp"
#include "cfsm/network.hpp"
#include "sgraph/sgraph.hpp"

namespace polis::codegen {

struct CCodegenOptions {
  /// Emit `#line`-style provenance comments linking statements back to
  /// s-graph vertices (the paper's source-level debugging hook).
  bool provenance_comments = false;
  /// Run the §V-B data-flow analysis and declare copy-in locals only for
  /// state variables with a write-before-read hazard.
  bool optimize_copy_in = false;
};

/// The reaction routine only (expects the generated RTOS header). Signals
/// are referenced by the machine's own port names; use
/// generate_instance_c for a machine instantiated inside a network.
std::string generate_c(const sgraph::Sgraph& graph, const cfsm::Cfsm& machine,
                       const CCodegenOptions& options = {});

/// Reaction routine for one network instance: the routine is named after
/// the instance, ports resolve to their bound nets, state variables live in
/// instance-prefixed globals (so several instances of one module coexist),
/// and event values are fetched through polis_value().
std::string generate_instance_c(const sgraph::Sgraph& graph,
                                const cfsm::Instance& instance,
                                const CCodegenOptions& options = {});

/// A complete compilable program; main() takes, in order: one 0/1 presence
/// flag per input signal, one value per valued input, one value per state
/// variable, and prints emissions, the consumed flag and the next state.
std::string generate_standalone_c(const sgraph::Sgraph& graph,
                                  const cfsm::Cfsm& machine,
                                  const CCodegenOptions& options = {});

}  // namespace polis::codegen
