#include "estim/calibrate.hpp"

#include "bdd/bdd.hpp"
#include "cfsm/random.hpp"
#include "cfsm/reactive.hpp"
#include "sgraph/build.hpp"
#include "util/rng.hpp"
#include "vm/compile.hpp"
#include "vm/machine.hpp"

namespace polis::estim {

namespace {

// Runs a micro-program (instructions followed by kRet) and returns its cycle
// count with the bare-return baseline subtracted.
long long measure_cycles(const std::vector<vm::Instr>& body,
                         const vm::TargetProfile& profile, bool flag = false) {
  vm::CompiledReaction r;
  r.program.name = "micro";
  r.program.slot_names = {"m0", "m1"};
  r.program.code = body;
  r.program.code.push_back(
      vm::Instr{vm::Opcode::kRet, 0, 0, 0, 0, expr::Op::kAdd, ""});
  const vm::RunResult res =
      vm::run(r, profile, {{"m0", 1}, {"m1", 2}},
              [flag](const std::string&) { return flag; });
  // Subtract the kRet epilogue measured separately.
  vm::CompiledReaction base;
  base.program.name = "base";
  base.program.code = {
      vm::Instr{vm::Opcode::kRet, 0, 0, 0, 0, expr::Op::kAdd, ""}};
  const vm::RunResult b =
      vm::run(base, profile, {}, [](const std::string&) { return false; });
  return res.cycles - b.cycles;
}

long long measure_bytes(vm::Instr i, const vm::TargetProfile& profile) {
  return profile.instr_bytes(i);
}

vm::Instr mk(vm::Opcode op, int a = 0, int b = 0, int c = 0,
             std::int64_t imm = 0, expr::Op alu = expr::Op::kAdd,
             std::string sym = "") {
  return vm::Instr{op, a, b, c, imm, alu, std::move(sym)};
}

}  // namespace

CostModel calibrate(const vm::TargetProfile& profile,
                    const CalibrationOptions& options) {
  CostModel m;
  m.target_name = profile.name;

  using vm::Opcode;

  // --- Statement-style micro-measurements (cycles). ---------------------------
  const long long ret_cycles = [&] {
    vm::CompiledReaction base;
    base.program.code = {mk(Opcode::kRet)};
    return vm::run(base, profile, {}, [](const std::string&) { return false; })
        .cycles;
  }();
  m.cyc_func_return = static_cast<double>(ret_cycles);
  m.cyc_func_enter =
      static_cast<double>(measure_cycles({mk(Opcode::kEnter, 0)}, profile));
  m.cyc_copy_in_per_var = static_cast<double>(
      measure_cycles({mk(Opcode::kEnter, 1)}, profile) -
      measure_cycles({mk(Opcode::kEnter, 0)}, profile));

  const long long ldi = measure_cycles({mk(Opcode::kLdi, 0, 0, 0, 5)}, profile);
  const long long ld = measure_cycles({mk(Opcode::kLd, 0, 0)}, profile);
  m.cyc_leaf = 0.5 * static_cast<double>(ldi + ld);

  m.cyc_op_alu = static_cast<double>(
      measure_cycles({mk(Opcode::kAlu, 0, 0, 1, 0, expr::Op::kAdd)}, profile));
  m.cyc_op_mul = static_cast<double>(
      measure_cycles({mk(Opcode::kAlu, 0, 0, 1, 0, expr::Op::kMul)}, profile));
  m.cyc_op_div = static_cast<double>(
      measure_cycles({mk(Opcode::kAlu, 0, 0, 1, 0, expr::Op::kDiv)}, profile));

  m.cyc_test_presence = static_cast<double>(
      measure_cycles({mk(Opcode::kDetect, 0, 0, 0, 0, expr::Op::kAdd, "x")},
                     profile));

  // Branch edges: taken vs fall-through, measured with a seeded register.
  const long long taken = measure_cycles(
      {mk(Opcode::kLdi, 0, 0, 0, 0), mk(Opcode::kBrz, 0, 2)}, profile) - ldi;
  const long long fall = measure_cycles(
      {mk(Opcode::kLdi, 0, 0, 0, 1), mk(Opcode::kBrz, 0, 2)}, profile) - ldi;
  m.cyc_test_edge_true = static_cast<double>(fall);   // fall into then-branch
  m.cyc_test_edge_false = static_cast<double>(taken); // branch to else

  m.cyc_goto = static_cast<double>(
      measure_cycles({mk(Opcode::kJmp, 0, 1)}, profile));
  const long long jmpind = measure_cycles(
      {mk(Opcode::kLdi, 0, 0, 0, 0), mk(Opcode::kJmpInd, 0, 2)}, profile) - ldi;
  m.cyc_multiway_base = static_cast<double>(jmpind) + m.cyc_goto;
  m.cyc_multiway_per_edge = 0.0;

  m.cyc_assign_emit = static_cast<double>(measure_cycles(
      {mk(Opcode::kEmit, 0, -1, 0, 0, expr::Op::kAdd, "y")}, profile));
  m.cyc_assign_emit_value = static_cast<double>(measure_cycles(
      {mk(Opcode::kEmit, 0, 0, 0, 0, expr::Op::kAdd, "y")}, profile)) -
      m.cyc_assign_emit;
  m.cyc_assign_store =
      static_cast<double>(measure_cycles({mk(Opcode::kSt, 0, 0)}, profile));
  m.cyc_consume =
      static_cast<double>(measure_cycles({mk(Opcode::kConsume)}, profile));

  // --- Statement-style sizes (bytes). ------------------------------------------
  m.sz_func_return = static_cast<double>(measure_bytes(mk(Opcode::kRet), profile));
  m.sz_func_enter =
      static_cast<double>(measure_bytes(mk(Opcode::kEnter, 0), profile));
  m.sz_copy_in_per_var =
      static_cast<double>(measure_bytes(mk(Opcode::kEnter, 1), profile) -
                          measure_bytes(mk(Opcode::kEnter, 0), profile));
  m.sz_leaf = 0.5 * static_cast<double>(
                        measure_bytes(mk(Opcode::kLdi), profile) +
                        measure_bytes(mk(Opcode::kLd), profile));
  m.sz_op_alu = static_cast<double>(
      measure_bytes(mk(Opcode::kAlu, 0, 0, 1, 0, expr::Op::kAdd), profile));
  m.sz_op_mul = static_cast<double>(
      measure_bytes(mk(Opcode::kAlu, 0, 0, 1, 0, expr::Op::kMul), profile));
  m.sz_op_div = static_cast<double>(
      measure_bytes(mk(Opcode::kAlu, 0, 0, 1, 0, expr::Op::kDiv), profile));
  m.sz_test_presence =
      static_cast<double>(measure_bytes(mk(Opcode::kDetect), profile));
  m.sz_branch = static_cast<double>(measure_bytes(mk(Opcode::kBrz), profile));
  m.sz_goto = static_cast<double>(measure_bytes(mk(Opcode::kJmp), profile));
  m.sz_multiway_entry =
      static_cast<double>(measure_bytes(mk(Opcode::kJmp), profile));
  m.sz_assign_emit = static_cast<double>(
      measure_bytes(mk(Opcode::kEmit, 0, -1), profile));
  m.sz_assign_emit_value =
      static_cast<double>(measure_bytes(mk(Opcode::kEmit, 0, 0), profile)) -
      m.sz_assign_emit;
  m.sz_assign_store =
      static_cast<double>(measure_bytes(mk(Opcode::kSt), profile));
  m.sz_consume =
      static_cast<double>(measure_bytes(mk(Opcode::kConsume), profile));

  m.pointer_size = profile.pointer_size;
  m.int_size = profile.int_size;

  // --- Layout statistics fitted on a compiled corpus. ---------------------------
  Rng rng(options.corpus_seed);
  long long total_jmps = 0;
  long long total_vertices = 0;
  long long total_brnz = 0;
  long long total_tests = 0;
  for (int i = 0; i < options.corpus_size; ++i) {
    const cfsm::Cfsm machine =
        cfsm::random_cfsm(rng, {}, "cal" + std::to_string(i));
    bdd::BddManager mgr;
    cfsm::ReactiveFunction rf(machine, mgr);
    const sgraph::Sgraph g = sgraph::build_sgraph(
        rf, sgraph::OrderingScheme::kSiftOutputsAfterSupport);
    const vm::CompiledReaction cr =
        vm::compile(g, vm::SymbolInfo::from(machine));
    for (const vm::Instr& ins : cr.program.code) {
      if (ins.op == Opcode::kJmp) total_jmps++;
      if (ins.op == Opcode::kBrnz) total_brnz++;
      if (ins.op == Opcode::kBrz) total_tests++;
    }
    total_vertices += static_cast<long long>(g.num_reachable());
  }
  total_tests += total_brnz;
  m.goto_fraction =
      total_vertices > 0
          ? static_cast<double>(total_jmps) / static_cast<double>(total_vertices)
          : 0.0;
  m.inverted_branch_fraction =
      total_tests > 0
          ? static_cast<double>(total_brnz) / static_cast<double>(total_tests)
          : 0.0;
  return m;
}

}  // namespace polis::estim
