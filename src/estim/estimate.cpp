#include "estim/estimate.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <vector>

#include "util/check.hpp"

namespace polis::estim {

EstimateContext context_for(const cfsm::Cfsm& machine) {
  EstimateContext ctx;
  ctx.num_state_vars = static_cast<int>(machine.state().size());
  for (const cfsm::Signal& s : machine.inputs())
    ctx.presence_vars.insert(cfsm::presence_name(s.name));
  return ctx;
}

double expr_cycles(const expr::Expr& e, const CostModel& m,
                   const EstimateContext& ctx) {
  switch (e.op()) {
    case expr::Op::kConst:
      return m.cyc_leaf;
    case expr::Op::kVar:
      return ctx.presence_vars.count(e.name()) != 0 ? m.cyc_test_presence
                                                    : m.cyc_leaf;
    case expr::Op::kNeg:
    case expr::Op::kNot:
      return expr_cycles(*e.args()[0], m, ctx) + m.cyc_leaf + m.cyc_op_alu;
    case expr::Op::kMul:
      return expr_cycles(*e.args()[0], m, ctx) +
             expr_cycles(*e.args()[1], m, ctx) + m.cyc_op_mul;
    case expr::Op::kDiv:
    case expr::Op::kMod:
      return expr_cycles(*e.args()[0], m, ctx) +
             expr_cycles(*e.args()[1], m, ctx) + m.cyc_op_div;
    case expr::Op::kIte:
      // cond + branch + the average of the two arms + goto.
      return expr_cycles(*e.args()[0], m, ctx) +
             0.5 * (m.cyc_test_edge_true + m.cyc_test_edge_false) +
             0.5 * (expr_cycles(*e.args()[1], m, ctx) +
                    expr_cycles(*e.args()[2], m, ctx)) +
             0.5 * m.cyc_goto;
    default:
      return expr_cycles(*e.args()[0], m, ctx) +
             expr_cycles(*e.args()[1], m, ctx) + m.cyc_op_alu;
  }
}

double expr_bytes(const expr::Expr& e, const CostModel& m,
                  const EstimateContext& ctx) {
  switch (e.op()) {
    case expr::Op::kConst:
      return m.sz_leaf;
    case expr::Op::kVar:
      return ctx.presence_vars.count(e.name()) != 0 ? m.sz_test_presence
                                                    : m.sz_leaf;
    case expr::Op::kNeg:
    case expr::Op::kNot:
      return expr_bytes(*e.args()[0], m, ctx) + m.sz_leaf + m.sz_op_alu;
    case expr::Op::kMul:
      return expr_bytes(*e.args()[0], m, ctx) +
             expr_bytes(*e.args()[1], m, ctx) + m.sz_op_mul;
    case expr::Op::kDiv:
    case expr::Op::kMod:
      return expr_bytes(*e.args()[0], m, ctx) +
             expr_bytes(*e.args()[1], m, ctx) + m.sz_op_div;
    case expr::Op::kIte:
      return expr_bytes(*e.args()[0], m, ctx) + m.sz_branch + m.sz_goto +
             expr_bytes(*e.args()[1], m, ctx) +
             expr_bytes(*e.args()[2], m, ctx);
    default:
      return expr_bytes(*e.args()[0], m, ctx) +
             expr_bytes(*e.args()[1], m, ctx) + m.sz_op_alu;
  }
}

namespace {

bool is_presence_test(const sgraph::Node& n, const EstimateContext& ctx) {
  return n.predicate->op() == expr::Op::kVar &&
         ctx.presence_vars.count(n.predicate->name()) != 0;
}

double action_cycles(const sgraph::ActionOp& a, const CostModel& m,
                     const EstimateContext& ctx) {
  switch (a.kind) {
    case sgraph::ActionOp::Kind::kConsume:
      return m.cyc_consume;
    case sgraph::ActionOp::Kind::kEmitPure:
      return m.cyc_assign_emit;
    case sgraph::ActionOp::Kind::kEmitValued:
      return m.cyc_assign_emit + m.cyc_assign_emit_value +
             expr_cycles(*a.value, m, ctx);
    case sgraph::ActionOp::Kind::kAssignVar:
      return expr_cycles(*a.value, m, ctx) + m.cyc_assign_store;
  }
  return 0;
}

double action_bytes(const sgraph::ActionOp& a, const CostModel& m,
                    const EstimateContext& ctx) {
  switch (a.kind) {
    case sgraph::ActionOp::Kind::kConsume:
      return m.sz_consume;
    case sgraph::ActionOp::Kind::kEmitPure:
      return m.sz_assign_emit;
    case sgraph::ActionOp::Kind::kEmitValued:
      return m.sz_assign_emit + m.sz_assign_emit_value +
             expr_bytes(*a.value, m, ctx);
    case sgraph::ActionOp::Kind::kAssignVar:
      return expr_bytes(*a.value, m, ctx) + m.sz_assign_store;
  }
  return 0;
}

}  // namespace

Estimate estimate(const sgraph::Sgraph& graph, const CostModel& m,
                  const EstimateContext& ctx) {
  const std::vector<sgraph::NodeId> order = graph.topo_order();

  // --- Code size: Σ over vertices (§III-C1). --------------------------------
  double size = 0;
  for (sgraph::NodeId id : order) {
    const sgraph::Node& n = graph.node(id);
    switch (n.kind) {
      case sgraph::Kind::kBegin:
        size += m.sz_func_enter + ctx.num_state_vars * m.sz_copy_in_per_var;
        break;
      case sgraph::Kind::kEnd:
        size += m.sz_func_return;
        break;
      case sgraph::Kind::kTest:
        size += (is_presence_test(n, ctx)
                     ? m.sz_test_presence
                     : expr_bytes(*n.predicate, m, ctx)) +
                m.sz_branch + m.goto_fraction * m.sz_goto;
        break;
      case sgraph::Kind::kAssign:
        size += action_bytes(n.action, m, ctx) +
                (n.condition != nullptr
                     ? expr_bytes(*n.condition, m, ctx) + m.sz_branch
                     : 0.0) +
                m.goto_fraction * m.sz_goto;
        break;
    }
  }

  // --- Min (Dijkstra / DAG relaxation) and max (PERT) cycles. ----------------
  // dist[v] = (min, max) cycles from BEGIN up to *entering* v.
  std::vector<double> dmin(graph.num_nodes(),
                           std::numeric_limits<double>::infinity());
  std::vector<double> dmax(graph.num_nodes(), -1.0);
  dmin[graph.begin()] = 0.0;
  dmax[graph.begin()] = 0.0;
  const double layout_goto = m.goto_fraction * m.cyc_goto;

  for (sgraph::NodeId id : order) {
    if (dmax[id] < 0.0) continue;  // unreachable
    const sgraph::Node& n = graph.node(id);
    auto relax = [&](sgraph::NodeId child, double lo, double hi) {
      dmin[child] = std::min(dmin[child], dmin[id] + lo);
      dmax[child] = std::max(dmax[child], dmax[id] + hi);
    };
    switch (n.kind) {
      case sgraph::Kind::kBegin:
        relax(n.next,
              m.cyc_func_enter + ctx.num_state_vars * m.cyc_copy_in_per_var,
              m.cyc_func_enter + ctx.num_state_vars * m.cyc_copy_in_per_var);
        break;
      case sgraph::Kind::kEnd:
        break;
      case sgraph::Kind::kTest: {
        const double pred = is_presence_test(n, ctx)
                                ? m.cyc_test_presence
                                : expr_cycles(*n.predicate, m, ctx);
        // A fraction of TESTs is compiled with the branch sense inverted,
        // swapping which edge pays the taken-branch cost.
        const double p = m.inverted_branch_fraction;
        const double edge_t =
            (1 - p) * m.cyc_test_edge_true + p * m.cyc_test_edge_false;
        const double edge_f =
            (1 - p) * m.cyc_test_edge_false + p * m.cyc_test_edge_true;
        relax(n.when_true, pred + edge_t + layout_goto,
              pred + edge_t + layout_goto);
        relax(n.when_false, pred + edge_f + layout_goto,
              pred + edge_f + layout_goto);
        break;
      }
      case sgraph::Kind::kAssign: {
        const double act = action_cycles(n.action, m, ctx);
        double lo = act;
        double hi = act;
        if (n.condition != nullptr) {
          const double cond = expr_cycles(*n.condition, m, ctx);
          lo = cond + m.cyc_test_edge_false;        // skipped
          hi = cond + m.cyc_test_edge_true + act;   // executed
        }
        relax(n.next, lo + layout_goto, hi + layout_goto);
        break;
      }
    }
  }

  const double tail = m.cyc_func_return;
  Estimate e;
  e.size_bytes = static_cast<long long>(std::llround(size));
  e.min_cycles = static_cast<long long>(std::llround(dmin[graph.end()] + tail));
  e.max_cycles = static_cast<long long>(std::llround(dmax[graph.end()] + tail));
  return e;
}

std::map<std::string, long long> network_latency_bounds(
    const cfsm::Network& network,
    const std::map<std::string, long long>& instance_max_cycles,
    long long per_hop_overhead_cycles) {
  const std::vector<std::string> order = network.topological_order();
  if (order.empty() && !network.instances().empty()) return {};  // cyclic

  auto wcet = [&instance_max_cycles](const std::string& inst) -> long long {
    auto it = instance_max_cycles.find(inst);
    return it == instance_max_cycles.end() ? 0 : it->second;
  };

  // PERT forward pass over the instance DAG: dist[i] is the worst-case time
  // from any environment stimulus to the completion of instance i.
  std::map<std::string, std::vector<std::string>> preds;
  for (const auto& [producer, consumer] : network.instance_edges())
    preds[consumer].push_back(producer);
  std::map<std::string, long long> dist;
  for (const std::string& inst : order) {
    long long upstream = 0;
    for (const std::string& p : preds[inst])
      upstream = std::max(upstream, dist.at(p));
    dist[inst] = upstream + wcet(inst) + per_hop_overhead_cycles;
  }

  std::map<std::string, long long> bounds;
  const auto nets = network.nets();
  for (const std::string& out : network.external_outputs()) {
    long long bound = 0;
    for (const auto& [producer, port] : nets.at(out).producers) {
      (void)port;
      bound = std::max(bound, dist.at(producer));
    }
    bounds[out] = bound;
  }
  return bounds;
}

}  // namespace polis::estim
