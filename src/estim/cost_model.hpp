// Software cost and performance estimation parameters (§III-C1).
//
// The paper characterises a target system (CPU + memory architecture +
// compiler) by 17 execution-cycle parameters, 15 code-size parameters and 4
// system parameters, fitted from sample benchmark programs. We keep exactly
// that structure; `calibrate()` (calibrate.hpp) derives the values by
// running style-specific micro-programs on the VM target — the same
// methodology the paper applied with a 68HC11 cycle calculator and pixie.
#pragma once

#include <string>

namespace polis::estim {

struct CostModel {
  std::string target_name;

  // --- Execution-cycle parameters (17) --------------------------------------
  double cyc_func_enter = 0;       // routine prologue
  double cyc_func_return = 0;      // routine epilogue / return
  double cyc_copy_in_per_var = 0;  // copy-in of one state variable (§V-B)
  double cyc_test_presence = 0;    // RTOS presence-detect call
  double cyc_test_edge_true = 0;   // then-edge of a TEST (fall-through)
  double cyc_test_edge_false = 0;  // else-edge of a TEST (taken branch)
  double cyc_multiway_base = 0;    // k-way jump: cost of edge i = a + b*i ...
  double cyc_multiway_per_edge = 0;  // ... (a and b, §III-C1)
  double cyc_assign_emit = 0;      // RTOS emission call (pure event)
  double cyc_assign_emit_value = 0;  // extra cost of a valued emission
  double cyc_assign_store = 0;     // store to a state variable
  double cyc_consume = 0;          // RTOS consume notification
  double cyc_goto = 0;             // unconditional branch (layout glue)
  double cyc_op_alu = 0;           // library op: add/sub/compare/logic
  double cyc_op_mul = 0;           // library op: multiply
  double cyc_op_div = 0;           // library op: divide/modulo
  double cyc_leaf = 0;             // load of a variable/constant operand

  // --- Code-size parameters (15), in bytes ----------------------------------
  double sz_func_enter = 0;
  double sz_func_return = 0;
  double sz_copy_in_per_var = 0;
  double sz_test_presence = 0;
  double sz_branch = 0;            // conditional branch of a TEST
  double sz_multiway_entry = 0;    // one jump-table entry
  double sz_assign_emit = 0;
  double sz_assign_emit_value = 0;
  double sz_assign_store = 0;
  double sz_consume = 0;
  double sz_goto = 0;
  double sz_op_alu = 0;
  double sz_op_mul = 0;
  double sz_op_div = 0;
  double sz_leaf = 0;

  // --- System parameters (4) --------------------------------------------------
  int pointer_size = 2;
  int int_size = 2;
  /// Fraction of vertices whose layout successor is not the fall-through
  /// neighbour and therefore needs an explicit goto (fitted on a corpus).
  double goto_fraction = 0.3;
  /// Fraction of TEST vertices compiled with the branch sense inverted
  /// (branch-to-true); swaps the edge costs for those (fitted on a corpus).
  double inverted_branch_fraction = 0.0;
};

}  // namespace polis::estim
