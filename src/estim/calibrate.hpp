// Derives a CostModel for a VM target by measurement (§III-C1): style-
// specific micro-programs are executed on the VM to obtain the per-statement
// cycle and byte parameters (the paper's "sample benchmark programs, about
// 20 functions"), and a corpus of synthesized random CFSMs is compiled to
// fit the layout statistics (goto fraction, inverted-branch fraction) that
// a graph-level estimator cannot know exactly.
#pragma once

#include "estim/cost_model.hpp"
#include "vm/isa.hpp"

namespace polis::estim {

struct CalibrationOptions {
  int corpus_size = 20;          // sample programs for the layout fit
  std::uint64_t corpus_seed = 7; // deterministic corpus
};

CostModel calibrate(const vm::TargetProfile& profile,
                    const CalibrationOptions& options = {});

}  // namespace polis::estim
