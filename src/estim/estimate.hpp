// Static cost and performance estimation on the s-graph (§III-C1):
//
//   * code size   — sum of per-vertex size costs (O(V));
//   * min cycles  — shortest BEGIN→END path (Dijkstra; on the acyclic
//                   s-graph this reduces to a linear DAG relaxation);
//   * max cycles  — longest BEGIN→END path (PERT, DAG longest path).
//
// Each vertex contributes a cost determined by its type and the types of
// its operands; TEST edges carry distinct then/else costs, exactly as the
// paper assigns edge costs.
#pragma once

#include <map>
#include <set>
#include <string>

#include "cfsm/cfsm.hpp"
#include "cfsm/network.hpp"
#include "estim/cost_model.hpp"
#include "sgraph/sgraph.hpp"

namespace polis::estim {

struct Estimate {
  long long size_bytes = 0;
  long long min_cycles = 0;
  long long max_cycles = 0;
};

/// Interface facts the estimator needs about the machine the s-graph was
/// synthesised from.
struct EstimateContext {
  int num_state_vars = 0;                 // copy-in count at entry
  std::set<std::string> presence_vars;    // names that are presence flags
};

EstimateContext context_for(const cfsm::Cfsm& machine);

Estimate estimate(const sgraph::Sgraph& graph, const CostModel& model,
                  const EstimateContext& context);

/// PERT max-path bound lifted from one s-graph to a whole network: the
/// worst-case input→output latency of each external-output net, assuming
/// every instance on the path runs uncontended and costs its estimated
/// `max_cycles` plus `per_hop_overhead_cycles` of RTOS dispatch (context
/// switch / ISR). Longest path over the instance DAG (the network-level
/// analogue of the §III-C1 max-cycles PERT pass); the RTOS robustness
/// layer cross-checks observed latencies against these bounds. Returns an
/// empty map when the instance graph is cyclic (no static bound exists).
/// Instances absent from `instance_max_cycles` cost 0 (e.g. hw-CFSMs).
std::map<std::string, long long> network_latency_bounds(
    const cfsm::Network& network,
    const std::map<std::string, long long>& instance_max_cycles,
    long long per_hop_overhead_cycles);

/// Expression cost helpers (exposed for the multiway baseline and tests).
double expr_cycles(const expr::Expr& e, const CostModel& model,
                   const EstimateContext& context);
double expr_bytes(const expr::Expr& e, const CostModel& model,
                  const EstimateContext& context);

}  // namespace polis::estim
