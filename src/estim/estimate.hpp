// Static cost and performance estimation on the s-graph (§III-C1):
//
//   * code size   — sum of per-vertex size costs (O(V));
//   * min cycles  — shortest BEGIN→END path (Dijkstra; on the acyclic
//                   s-graph this reduces to a linear DAG relaxation);
//   * max cycles  — longest BEGIN→END path (PERT, DAG longest path).
//
// Each vertex contributes a cost determined by its type and the types of
// its operands; TEST edges carry distinct then/else costs, exactly as the
// paper assigns edge costs.
#pragma once

#include <set>
#include <string>

#include "cfsm/cfsm.hpp"
#include "estim/cost_model.hpp"
#include "sgraph/sgraph.hpp"

namespace polis::estim {

struct Estimate {
  long long size_bytes = 0;
  long long min_cycles = 0;
  long long max_cycles = 0;
};

/// Interface facts the estimator needs about the machine the s-graph was
/// synthesised from.
struct EstimateContext {
  int num_state_vars = 0;                 // copy-in count at entry
  std::set<std::string> presence_vars;    // names that are presence flags
};

EstimateContext context_for(const cfsm::Cfsm& machine);

Estimate estimate(const sgraph::Sgraph& graph, const CostModel& model,
                  const EstimateContext& context);

/// Expression cost helpers (exposed for the multiway baseline and tests).
double expr_cycles(const expr::Expr& e, const CostModel& model,
                   const EstimateContext& context);
double expr_bytes(const expr::Expr& e, const CostModel& model,
                  const EstimateContext& context);

}  // namespace polis::estim
