// Textual frontend: a small reactive specification language ("RSL") in
// which the examples are written, playing the role the paper assigns to
// Esterel/StateCharts-style sources translated into CFSMs (§I-F, [36]).
//
//   module simple {
//     input  c : int[16];        # valued event, domain 0..15
//     input  reset;              # pure event
//     output y;
//     state  a : int[16] = 0;
//
//     when present(c) && a == value(c) -> { a := 0; emit y; }
//     when present(c) && a != value(c) -> { a := a + 1; }
//   }
//
//   network dash {
//     instance u0 : simple (c = wheel_pulse, y = alarm);
//   }
//
// Rules are priority-ordered (first match fires). Unbound instance ports
// connect to nets named after the port. `#` starts a line comment.
#pragma once

#include <map>
#include <memory>
#include <stdexcept>
#include <string>
#include <string_view>
#include <vector>

#include "cfsm/cfsm.hpp"
#include "cfsm/network.hpp"

namespace polis::frontend {

class ParseError : public std::runtime_error {
 public:
  ParseError(int line, const std::string& message)
      : std::runtime_error("line " + std::to_string(line) + ": " + message),
        line_(line) {}
  int line() const { return line_; }

 private:
  int line_;
};

struct ParsedFile {
  std::map<std::string, std::shared_ptr<const cfsm::Cfsm>> modules;
  std::map<std::string, std::shared_ptr<cfsm::Network>> networks;
  std::map<std::string, int> module_lines;  // 'module' keyword line per module
};

/// Parses a complete source text. Throws ParseError on malformed input.
ParsedFile parse(std::string_view source);

/// Convenience: parses a source containing exactly one module. Throws
/// ParseError — pointing at the offending line — when the source declares
/// zero modules or more than one.
std::shared_ptr<const cfsm::Cfsm> parse_module(std::string_view source);

}  // namespace polis::frontend
