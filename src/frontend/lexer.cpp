#include "frontend/lexer.hpp"

#include <cctype>
#include <limits>

#include "frontend/parser.hpp"

namespace polis::frontend {

std::vector<Token> lex(std::string_view src) {
  std::vector<Token> out;
  int line = 1;
  size_t i = 0;
  auto push = [&](Tok kind, std::string text) {
    Token t;
    t.kind = kind;
    t.text = std::move(text);
    t.line = line;
    out.push_back(std::move(t));
  };

  while (i < src.size()) {
    const char c = src[i];
    if (c == '\n') {
      ++line;
      ++i;
      continue;
    }
    if (std::isspace(static_cast<unsigned char>(c))) {
      ++i;
      continue;
    }
    if (c == '#') {  // line comment
      while (i < src.size() && src[i] != '\n') ++i;
      continue;
    }
    if (std::isalpha(static_cast<unsigned char>(c)) || c == '_') {
      size_t j = i;
      while (j < src.size() && (std::isalnum(static_cast<unsigned char>(src[j])) ||
                                src[j] == '_'))
        ++j;
      push(Tok::kIdent, std::string(src.substr(i, j - i)));
      i = j;
      continue;
    }
    if (std::isdigit(static_cast<unsigned char>(c))) {
      size_t j = i;
      std::int64_t v = 0;
      while (j < src.size() && std::isdigit(static_cast<unsigned char>(src[j]))) {
        const std::int64_t digit = src[j] - '0';
        if (v > (std::numeric_limits<std::int64_t>::max() - digit) / 10)
          throw ParseError(line, "number literal too large");
        v = v * 10 + digit;
        ++j;
      }
      Token t;
      t.kind = Tok::kNumber;
      t.text = std::string(src.substr(i, j - i));
      t.number = v;
      t.line = line;
      out.push_back(std::move(t));
      i = j;
      continue;
    }
    auto two = [&](char a, char b) {
      return c == a && i + 1 < src.size() && src[i + 1] == b;
    };
    if (two(':', '=')) { push(Tok::kAssign, ":="); i += 2; continue; }
    if (two('-', '>')) { push(Tok::kArrow, "->"); i += 2; continue; }
    if (two('&', '&')) { push(Tok::kAndAnd, "&&"); i += 2; continue; }
    if (two('|', '|')) { push(Tok::kOrOr, "||"); i += 2; continue; }
    if (two('=', '=')) { push(Tok::kEqEq, "=="); i += 2; continue; }
    if (two('!', '=')) { push(Tok::kNeq, "!="); i += 2; continue; }
    if (two('<', '=')) { push(Tok::kLe, "<="); i += 2; continue; }
    if (two('>', '=')) { push(Tok::kGe, ">="); i += 2; continue; }
    switch (c) {
      case '{': push(Tok::kLBrace, "{"); break;
      case '}': push(Tok::kRBrace, "}"); break;
      case '(': push(Tok::kLParen, "("); break;
      case ')': push(Tok::kRParen, ")"); break;
      case '[': push(Tok::kLBracket, "["); break;
      case ']': push(Tok::kRBracket, "]"); break;
      case ':': push(Tok::kColon, ":"); break;
      case ';': push(Tok::kSemi, ";"); break;
      case ',': push(Tok::kComma, ","); break;
      case '=': push(Tok::kEq, "="); break;
      case '!': push(Tok::kNot, "!"); break;
      case '<': push(Tok::kLt, "<"); break;
      case '>': push(Tok::kGt, ">"); break;
      case '+': push(Tok::kPlus, "+"); break;
      case '-': push(Tok::kMinus, "-"); break;
      case '*': push(Tok::kStar, "*"); break;
      case '/': push(Tok::kSlash, "/"); break;
      case '%': push(Tok::kPercent, "%"); break;
      default:
        throw ParseError(line, std::string("unexpected character '") + c + "'");
    }
    ++i;
  }
  push(Tok::kEof, "");
  return out;
}

const char* token_name(Tok kind) {
  switch (kind) {
    case Tok::kIdent: return "identifier";
    case Tok::kNumber: return "number";
    case Tok::kLBrace: return "'{'";
    case Tok::kRBrace: return "'}'";
    case Tok::kLParen: return "'('";
    case Tok::kRParen: return "')'";
    case Tok::kLBracket: return "'['";
    case Tok::kRBracket: return "']'";
    case Tok::kColon: return "':'";
    case Tok::kSemi: return "';'";
    case Tok::kComma: return "','";
    case Tok::kArrow: return "'->'";
    case Tok::kAssign: return "':='";
    case Tok::kEq: return "'='";
    case Tok::kAndAnd: return "'&&'";
    case Tok::kOrOr: return "'||'";
    case Tok::kNot: return "'!'";
    case Tok::kEqEq: return "'=='";
    case Tok::kNeq: return "'!='";
    case Tok::kLt: return "'<'";
    case Tok::kLe: return "'<='";
    case Tok::kGt: return "'>'";
    case Tok::kGe: return "'>='";
    case Tok::kPlus: return "'+'";
    case Tok::kMinus: return "'-'";
    case Tok::kStar: return "'*'";
    case Tok::kSlash: return "'/'";
    case Tok::kPercent: return "'%'";
    case Tok::kEof: return "end of input";
  }
  return "?";
}

}  // namespace polis::frontend
