// Tokeniser for the RSL frontend.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

namespace polis::frontend {

enum class Tok {
  kIdent,
  kNumber,
  kLBrace, kRBrace, kLParen, kRParen, kLBracket, kRBracket,
  kColon, kSemi, kComma, kArrow, kAssign, kEq,
  kAndAnd, kOrOr, kNot,
  kEqEq, kNeq, kLt, kLe, kGt, kGe,
  kPlus, kMinus, kStar, kSlash, kPercent,
  kEof,
};

struct Token {
  Tok kind = Tok::kEof;
  std::string text;
  std::int64_t number = 0;
  int line = 1;
};

/// Tokenises the whole input ('#' starts a line comment). Throws ParseError
/// on an unknown character.
std::vector<Token> lex(std::string_view source);

const char* token_name(Tok kind);

}  // namespace polis::frontend
