#include "frontend/parser.hpp"

#include <algorithm>
#include <set>
#include <utility>
#include <vector>

#include "frontend/lexer.hpp"
#include "obs/obs.hpp"
#include "util/check.hpp"
#include "util/governor.hpp"

namespace polis::frontend {

namespace {

class Parser {
 public:
  explicit Parser(std::string_view source) : tokens_(lex(source)) {}

  ParsedFile parse_file() {
    ParsedFile file;
    while (!at(Tok::kEof)) {
      if (at_keyword("module")) {
        const int decl_line = cur().line;
        auto m = parse_module_decl();
        if (file.modules.count(m->name()) != 0)
          fail("duplicate module '" + m->name() + "'");
        file.module_lines.emplace(m->name(), decl_line);
        file.modules.emplace(m->name(), std::move(m));
      } else if (at_keyword("network")) {
        auto n = parse_network_decl(file);
        if (file.networks.count(n->name()) != 0)
          fail("duplicate network '" + n->name() + "'");
        file.networks.emplace(n->name(), std::move(n));
      } else {
        fail("expected 'module' or 'network'");
      }
    }
    return file;
  }

 private:
  // --- Token helpers ----------------------------------------------------------

  const Token& cur() const { return tokens_[pos_]; }
  bool at(Tok kind) const { return cur().kind == kind; }
  bool at_keyword(const char* kw) const {
    return at(Tok::kIdent) && cur().text == kw;
  }
  Token take() {
    // Deadline/cancel backstop for adversarial inputs (the mutation sweep):
    // every parser loop consumes tokens, so this bounds any parse.
    ResourceGovernor::poll_current();
    return tokens_[pos_++];
  }
  [[noreturn]] void fail(const std::string& message) const {
    throw ParseError(cur().line, message);
  }
  Token expect(Tok kind, const char* what) {
    if (!at(kind))
      fail(std::string("expected ") + what + ", found " +
           token_name(cur().kind) + (cur().text.empty() ? "" : " '" + cur().text + "'"));
    return take();
  }
  void expect_keyword(const char* kw) {
    if (!at_keyword(kw)) fail(std::string("expected '") + kw + "'");
    take();
  }
  bool accept(Tok kind) {
    if (!at(kind)) return false;
    take();
    return true;
  }

  // --- Declarations -------------------------------------------------------------

  // type: `int [ N ]` (domain N) or nothing (pure).
  int parse_domain() {
    expect_keyword("int");
    expect(Tok::kLBracket, "'['");
    const Token n = expect(Tok::kNumber, "domain size");
    if (n.number < 2) throw ParseError(n.line, "domain must be at least 2");
    // Domains are enumerated (one BDD variable per log2 bit, concrete-space
    // sweeps elsewhere); cap them before the int cast can truncate.
    if (n.number > (std::int64_t{1} << 20))
      throw ParseError(n.line, "domain too large (max 2^20)");
    expect(Tok::kRBracket, "']'");
    return static_cast<int>(n.number);
  }

  std::shared_ptr<const cfsm::Cfsm> parse_module_decl() {
    expect_keyword("module");
    const std::string name = expect(Tok::kIdent, "module name").text;
    expect(Tok::kLBrace, "'{'");

    std::vector<cfsm::Signal> inputs;
    std::vector<cfsm::Signal> outputs;
    std::vector<cfsm::StateVar> state;
    std::vector<cfsm::Rule> rules;
    std::vector<cfsm::Assertion> assertions;

    while (!accept(Tok::kRBrace)) {
      if (at_keyword("input") || at_keyword("output")) {
        const bool is_input = cur().text == "input";
        take();
        const std::string sig = expect(Tok::kIdent, "signal name").text;
        int domain = 1;
        if (accept(Tok::kColon)) domain = parse_domain();
        expect(Tok::kSemi, "';'");
        (is_input ? inputs : outputs).push_back(cfsm::Signal{sig, domain});
      } else if (at_keyword("state")) {
        take();
        const std::string var = expect(Tok::kIdent, "state variable").text;
        expect(Tok::kColon, "':'");
        const int domain = parse_domain();
        std::int64_t init = 0;
        if (accept(Tok::kEq)) {
          const Token n = expect(Tok::kNumber, "initial value");
          init = n.number;
        }
        expect(Tok::kSemi, "';'");
        state.push_back(cfsm::StateVar{var, domain, init});
      } else if (at_keyword("when")) {
        take();
        cfsm::Rule rule;
        rule.guard = parse_expr();
        expect(Tok::kArrow, "'->'");
        expect(Tok::kLBrace, "'{'");
        while (!accept(Tok::kRBrace)) parse_action(rule);
        rules.push_back(std::move(rule));
      } else if (at_keyword("assert")) {
        const int line = cur().line;
        take();
        cfsm::Assertion a;
        a.expr = parse_expr();
        a.line = line;
        expect(Tok::kSemi, "';'");
        assertions.push_back(std::move(a));
      } else {
        fail("expected 'input', 'output', 'state', 'when' or 'assert'");
      }
    }
    // Assertions may reference declarations made after them, so their
    // variables are resolved here — pointing the error at the assert's own
    // line rather than at the end of the module.
    std::set<std::string> legal;
    for (const cfsm::Signal& s : inputs) {
      legal.insert(cfsm::presence_name(s.name));
      if (!s.is_pure()) legal.insert(cfsm::value_name(s.name));
    }
    for (const cfsm::StateVar& v : state) legal.insert(v.name);
    for (const cfsm::Assertion& a : assertions) {
      for (const std::string& v : expr::support(*a.expr)) {
        if (legal.count(v) == 0)
          throw ParseError(a.line, "assert in module '" + name +
                                       "' references unknown variable '" + v +
                                       "'");
      }
    }
    // Cfsm's constructor validates names, domains and expressions.
    try {
      return std::make_shared<cfsm::Cfsm>(name, std::move(inputs),
                                          std::move(outputs), std::move(state),
                                          std::move(rules),
                                          std::move(assertions));
    } catch (const CheckError& e) {
      throw ParseError(cur().line, e.what());
    }
  }

  void parse_action(cfsm::Rule& rule) {
    if (at_keyword("emit")) {
      take();
      const std::string sig = expect(Tok::kIdent, "signal name").text;
      expr::ExprRef value;
      if (accept(Tok::kLParen)) {
        value = parse_expr();
        expect(Tok::kRParen, "')'");
      }
      expect(Tok::kSemi, "';'");
      rule.emits.push_back(cfsm::Emit{sig, std::move(value)});
      return;
    }
    const std::string var = expect(Tok::kIdent, "state variable").text;
    expect(Tok::kAssign, "':='");
    expr::ExprRef value = parse_expr();
    expect(Tok::kSemi, "';'");
    rule.assigns.push_back(cfsm::Assign{var, std::move(value)});
  }

  std::shared_ptr<cfsm::Network> parse_network_decl(const ParsedFile& file) {
    expect_keyword("network");
    const std::string name = expect(Tok::kIdent, "network name").text;
    auto network = std::make_shared<cfsm::Network>(name);
    expect(Tok::kLBrace, "'{'");
    while (!accept(Tok::kRBrace)) {
      expect_keyword("instance");
      const std::string inst = expect(Tok::kIdent, "instance name").text;
      expect(Tok::kColon, "':'");
      const std::string module = expect(Tok::kIdent, "module name").text;
      auto it = file.modules.find(module);
      if (it == file.modules.end()) fail("unknown module '" + module + "'");
      std::map<std::string, std::string> bindings;
      if (accept(Tok::kLParen)) {
        while (!accept(Tok::kRParen)) {
          const std::string port = expect(Tok::kIdent, "port name").text;
          expect(Tok::kEq, "'='");
          const std::string net = expect(Tok::kIdent, "net name").text;
          bindings[port] = net;
          if (!at(Tok::kRParen)) expect(Tok::kComma, "','");
        }
      }
      expect(Tok::kSemi, "';'");
      try {
        network->add_instance(inst, it->second, std::move(bindings));
      } catch (const CheckError& e) {
        throw ParseError(cur().line, e.what());
      }
    }
    return network;
  }

  // --- Expressions (precedence climbing) -------------------------------------

  expr::ExprRef parse_expr() { return parse_or(); }

  expr::ExprRef parse_or() {
    expr::ExprRef e = parse_and();
    while (accept(Tok::kOrOr)) e = expr::lor(e, parse_and());
    return e;
  }

  expr::ExprRef parse_and() {
    expr::ExprRef e = parse_equality();
    while (accept(Tok::kAndAnd)) e = expr::land(e, parse_equality());
    return e;
  }

  expr::ExprRef parse_equality() {
    expr::ExprRef e = parse_relational();
    while (at(Tok::kEqEq) || at(Tok::kNeq)) {
      const Tok op = take().kind;
      expr::ExprRef rhs = parse_relational();
      e = op == Tok::kEqEq ? expr::eq(e, rhs) : expr::ne(e, rhs);
    }
    return e;
  }

  expr::ExprRef parse_relational() {
    expr::ExprRef e = parse_additive();
    while (at(Tok::kLt) || at(Tok::kLe) || at(Tok::kGt) || at(Tok::kGe)) {
      const Tok op = take().kind;
      expr::ExprRef rhs = parse_additive();
      switch (op) {
        case Tok::kLt: e = expr::lt(e, rhs); break;
        case Tok::kLe: e = expr::le(e, rhs); break;
        case Tok::kGt: e = expr::gt(e, rhs); break;
        default: e = expr::ge(e, rhs); break;
      }
    }
    return e;
  }

  expr::ExprRef parse_additive() {
    expr::ExprRef e = parse_multiplicative();
    while (at(Tok::kPlus) || at(Tok::kMinus)) {
      const Tok op = take().kind;
      expr::ExprRef rhs = parse_multiplicative();
      e = op == Tok::kPlus ? expr::add(e, rhs) : expr::sub(e, rhs);
    }
    return e;
  }

  expr::ExprRef parse_multiplicative() {
    expr::ExprRef e = parse_unary();
    while (at(Tok::kStar) || at(Tok::kSlash) || at(Tok::kPercent)) {
      const Tok op = take().kind;
      expr::ExprRef rhs = parse_unary();
      switch (op) {
        case Tok::kStar: e = expr::mul(e, rhs); break;
        case Tok::kSlash: e = expr::div(e, rhs); break;
        default: e = expr::mod(e, rhs); break;
      }
    }
    return e;
  }

  expr::ExprRef parse_unary() {
    if (accept(Tok::kNot)) return expr::lnot(parse_unary());
    if (accept(Tok::kMinus)) return expr::neg(parse_unary());
    return parse_primary();
  }

  expr::ExprRef parse_primary() {
    if (at(Tok::kNumber)) return expr::constant(take().number);
    if (accept(Tok::kLParen)) {
      expr::ExprRef e = parse_expr();
      expect(Tok::kRParen, "')'");
      return e;
    }
    if (at_keyword("present") || at_keyword("value")) {
      const bool is_presence = cur().text == "present";
      take();
      expect(Tok::kLParen, "'('");
      const std::string sig = expect(Tok::kIdent, "signal name").text;
      expect(Tok::kRParen, "')'");
      return is_presence ? cfsm::presence(sig) : cfsm::value_of(sig);
    }
    if (at(Tok::kIdent)) return expr::var(take().text);
    fail("expected an expression");
  }

  std::vector<Token> tokens_;
  size_t pos_ = 0;
};

}  // namespace

ParsedFile parse(std::string_view source) {
  OBS_SPAN(span, "frontend.parse", "pipeline");
  Parser parser(source);
  ParsedFile file = parser.parse_file();
  if (span.armed()) {
    span.arg("source_bytes", source.size());
    span.arg("modules", file.modules.size());
    span.arg("networks", file.networks.size());
  }
  return file;
}

std::shared_ptr<const cfsm::Cfsm> parse_module(std::string_view source) {
  ParsedFile file = parse(source);
  if (file.modules.empty())
    throw ParseError(1, "expected exactly one module, found none");
  if (file.modules.size() > 1) {
    // Point at the second module in declaration order, not map order.
    std::vector<std::pair<int, std::string>> decls;
    for (const auto& [name, line] : file.module_lines)
      decls.emplace_back(line, name);
    std::sort(decls.begin(), decls.end());
    throw ParseError(decls[1].first,
                     "expected exactly one module, found " +
                         std::to_string(file.modules.size()) +
                         " (second module '" + decls[1].second + "')");
  }
  return file.modules.begin()->second;
}

}  // namespace polis::frontend
