// The two-level multiway jump implementation used as a reference point in
// Table II: "The first jump is done based on the current state, the second
// jump is done based on the concatenation of all the decision variables
// into a single integer. The jumps are followed by an appropriate sequence
// of ASSIGNs." — the structured hand-coding style of reactive systems.
//
// Level 1 dispatches on the packed state-variable valuation; predicates
// whose support is state-only become constants under that valuation. Level 2
// evaluates the remaining (decision) predicates into an index and dispatches
// through a jump table into deduplicated action blocks.
#pragma once

#include <cstdint>
#include <optional>

#include "cfsm/reactive.hpp"
#include "estim/estimate.hpp"
#include "vm/compile.hpp"

namespace polis::baseline {

struct MultiwayResult {
  vm::CompiledReaction reaction;
  size_t level1_entries = 0;        // state valuations
  size_t decision_tests = 0;        // predicates indexed at level 2
  size_t action_blocks = 0;         // deduplicated blocks
  /// The deduplicated action blocks (for structural cost estimation).
  std::vector<std::vector<sgraph::ActionOp>> blocks;
  /// Decision predicates, in level-2 index order.
  std::vector<expr::ExprRef> decision_predicates;
};

/// Returns nullopt if states × 2^decision-tests exceeds `limit`.
std::optional<MultiwayResult> compile_multiway(cfsm::ReactiveFunction& rf,
                                               std::uint64_t limit = 1u << 18);

/// Structural cost estimate of a multiway implementation, exercising the
/// paper's dedicated multiway parameters (the `a + b·i` edge model and the
/// per-entry jump-table size, §III-C1) — the analogue of estim::estimate
/// for this code shape.
estim::Estimate estimate_multiway(const MultiwayResult& result,
                                  const cfsm::ReactiveFunction& rf,
                                  const estim::CostModel& model,
                                  const estim::EstimateContext& context);

}  // namespace polis::baseline
