#include "baseline/compose.hpp"

#include <algorithm>
#include <deque>
#include <map>
#include <set>

#include "util/check.hpp"

namespace polis::baseline {

namespace {

using StateMap = std::map<std::string, std::int64_t>;

std::string composed_var(const std::string& instance, const std::string& var) {
  return instance + "__" + var;
}

/// One synchronous tick: every instance reacts once, in topological order,
/// with internal events delivered instantly downstream.
struct TickResult {
  std::vector<std::pair<std::string, std::int64_t>> external_emissions;
  StateMap next_state;
};

class Composer {
 public:
  Composer(const cfsm::Network& network) : network_(&network) {
    nets_ = network.nets();
    topo_ = network.topological_order();
    for (const auto& [name, net] : nets_) {
      if (net.producers.empty() && !net.consumers.empty())
        external_inputs_.push_back(name);
      if (!net.producers.empty() && net.consumers.empty())
        external_outputs_.push_back(name);
    }
  }

  bool valid() const {
    if (topo_.empty() && !network_->instances().empty()) return false;
    for (const auto& [name, net] : nets_)
      if (net.producers.size() > 1) return false;
    return true;
  }

  const std::vector<std::string>& external_inputs() const {
    return external_inputs_;
  }
  const std::vector<std::string>& external_outputs() const {
    return external_outputs_;
  }
  const std::map<std::string, cfsm::Net>& nets() const { return nets_; }

  StateMap initial_state() const {
    StateMap st;
    for (const cfsm::Instance& inst : network_->instances())
      for (const auto& [name, v] : inst.machine->initial_state())
        st[composed_var(inst.name, name)] = v;
    return st;
  }

  TickResult tick(const StateMap& state, const cfsm::Snapshot& ext) const {
    // Pending events per net within this tick.
    std::map<std::string, std::pair<bool, std::int64_t>> pending;
    for (const auto& [net, present] : ext.present)
      if (present) pending[net] = {true, ext.value_of(net)};

    TickResult out;
    out.next_state = state;
    for (const std::string& inst_name : topo_) {
      const cfsm::Instance& inst = network_->instance(inst_name);
      cfsm::Snapshot snap;
      for (const cfsm::Signal& in : inst.machine->inputs()) {
        auto it = pending.find(inst.net_of(in.name));
        if (it == pending.end() || !it->second.first) continue;
        snap.present[in.name] = true;
        if (!in.is_pure()) snap.value[in.name] = it->second.second;
      }
      if (snap.present.empty()) continue;  // not enabled: no reaction (§IV-A)
      StateMap local;
      for (const cfsm::StateVar& v : inst.machine->state())
        local[v.name] = state.at(composed_var(inst_name, v.name));
      const cfsm::Reaction r = inst.machine->react(snap, local);
      for (const auto& [name, v] : r.next_state)
        out.next_state[composed_var(inst_name, name)] = v;
      for (const auto& [port, value] : r.emissions) {
        const std::string& net = inst.net_of(port);
        const cfsm::Net& info = nets_.at(net);
        if (info.consumers.empty()) {
          out.external_emissions.emplace_back(net, value);
        } else {
          pending[net] = {true, value};
        }
      }
    }
    return out;
  }

 private:
  const cfsm::Network* network_;
  std::map<std::string, cfsm::Net> nets_;
  std::vector<std::string> topo_;
  std::vector<std::string> external_inputs_;
  std::vector<std::string> external_outputs_;
};

}  // namespace

std::optional<ComposeResult> synchronous_compose(
    const cfsm::Network& network, const ComposeOptions& options) {
  Composer composer(network);
  if (!composer.valid()) return std::nullopt;

  // External snapshot space (presence per input net; value when valued).
  struct Dim {
    std::string net;
    bool is_value;
    std::uint64_t radix;
  };
  std::vector<Dim> dims;
  std::uint64_t snapshots = 1;
  for (const std::string& net : composer.external_inputs()) {
    const cfsm::Net& info = composer.nets().at(net);
    dims.push_back({net, false, 2});
    snapshots *= 2;
    if (info.domain > 1) {
      dims.push_back({net, true, static_cast<std::uint64_t>(info.domain)});
      snapshots *= static_cast<std::uint64_t>(info.domain);
    }
    if (snapshots > options.explosion_limit) return std::nullopt;
  }

  // BFS over reachable composed states, producing one fully-specified rule
  // per (state, canonical snapshot).
  std::vector<cfsm::Rule> rules;
  std::set<StateMap> seen;
  std::deque<StateMap> queue;
  const StateMap init = composer.initial_state();
  seen.insert(init);
  queue.push_back(init);
  std::set<std::string> rule_keys;

  while (!queue.empty()) {
    const StateMap state = queue.front();
    queue.pop_front();
    if (static_cast<std::uint64_t>(seen.size()) * snapshots >
        options.explosion_limit)
      return std::nullopt;

    std::vector<std::uint64_t> counter(dims.size(), 0);
    for (std::uint64_t it = 0; it < snapshots; ++it) {
      cfsm::Snapshot snap;
      for (size_t d = 0; d < dims.size(); ++d) {
        if (dims[d].is_value) {
          snap.value[dims[d].net] = static_cast<std::int64_t>(counter[d]);
        } else {
          snap.present[dims[d].net] = counter[d] != 0;
        }
      }
      // Canonicalise: values of absent events are irrelevant.
      std::string key;
      for (const auto& [k, v] : state) key += k + "=" + std::to_string(v) + ";";
      for (size_t d = 0; d < dims.size(); ++d) {
        const bool present = snap.present.count(dims[d].net) != 0 &&
                             snap.present.at(dims[d].net);
        if (dims[d].is_value) {
          key += present ? std::to_string(snap.value[dims[d].net]) : "-";
        } else {
          key += present ? "1" : "0";
        }
        key += ",";
      }
      const bool fresh = rule_keys.insert(key).second;
      bool any_present = false;
      for (const auto& [net, p] : snap.present) {
        (void)net;
        any_present = any_present || p;
      }

      const TickResult t = composer.tick(state, snap);
      if (seen.insert(t.next_state).second) queue.push_back(t.next_state);
      // The RTOS only runs the task when some event is present (§IV-A), so
      // the all-absent snapshot needs no rule.
      if (!fresh || !any_present) goto next_snapshot;

      {
        // Guard: exact cube over presence flags, values of present valued
        // inputs, and the composed state.
        expr::ExprRef guard = expr::constant(1);
        for (const std::string& net : composer.external_inputs()) {
          const bool present =
              snap.present.count(net) != 0 && snap.present.at(net);
          guard = expr::land(guard, present
                                        ? cfsm::presence(net)
                                        : expr::lnot(cfsm::presence(net)));
          const cfsm::Net& info = composer.nets().at(net);
          if (present && info.domain > 1) {
            guard = expr::land(
                guard, expr::eq(cfsm::value_of(net),
                                expr::constant(snap.value.at(net))));
          }
        }
        for (const auto& [var, v] : state)
          guard = expr::land(guard,
                             expr::eq(expr::var(var), expr::constant(v)));

        cfsm::Rule rule;
        rule.guard = guard;
        for (const auto& [net, value] : t.external_emissions) {
          const cfsm::Net& info = composer.nets().at(net);
          rule.emits.push_back(cfsm::Emit{
              net, info.domain > 1 ? expr::constant(value) : nullptr});
        }
        for (const auto& [var, v] : t.next_state) {
          if (state.at(var) != v)
            rule.assigns.push_back(cfsm::Assign{var, expr::constant(v)});
        }
        rules.push_back(std::move(rule));
      }
    next_snapshot:
      for (size_t d = 0; d < dims.size(); ++d) {
        if (++counter[d] < dims[d].radix) break;
        counter[d] = 0;
      }
    }
  }

  // Interface of the composed machine.
  std::vector<cfsm::Signal> inputs;
  for (const std::string& net : composer.external_inputs())
    inputs.push_back(cfsm::Signal{net, composer.nets().at(net).domain});
  std::vector<cfsm::Signal> outputs;
  for (const std::string& net : composer.external_outputs())
    outputs.push_back(cfsm::Signal{net, composer.nets().at(net).domain});
  std::vector<cfsm::StateVar> state_vars;
  for (const cfsm::Instance& inst : network.instances())
    for (const cfsm::StateVar& v : inst.machine->state())
      state_vars.push_back(cfsm::StateVar{
          composed_var(inst.name, v.name), v.domain, v.init});

  ComposeResult result;
  result.reachable_states = seen.size();
  result.rules = rules.size();
  result.machine = std::make_shared<cfsm::Cfsm>(
      network.name() + "_composed", std::move(inputs), std::move(outputs),
      std::move(state_vars), std::move(rules));
  return result;
}

}  // namespace polis::baseline
