#include "baseline/multiway.hpp"

#include <cmath>
#include <limits>
#include <map>
#include <set>
#include <string>
#include <vector>

#include "util/check.hpp"

namespace polis::baseline {

namespace {

sgraph::ActionOp to_action_op(const cfsm::ReactiveFunction& rf,
                              const cfsm::ActionVariable& av) {
  sgraph::ActionOp op;
  switch (av.kind) {
    case cfsm::ActionVariable::Kind::kConsume:
      op.kind = sgraph::ActionOp::Kind::kConsume;
      break;
    case cfsm::ActionVariable::Kind::kAssignState:
      op.kind = sgraph::ActionOp::Kind::kAssignVar;
      op.target = av.target;
      op.value = av.value;
      break;
    case cfsm::ActionVariable::Kind::kEmit: {
      const cfsm::Signal* sig = rf.machine().find_output(av.target);
      POLIS_CHECK(sig != nullptr);
      op.kind = sig->is_pure() ? sgraph::ActionOp::Kind::kEmitPure
                               : sgraph::ActionOp::Kind::kEmitValued;
      op.target = av.target;
      op.value = av.value;
      break;
    }
  }
  return op;
}

}  // namespace

std::optional<MultiwayResult> compile_multiway(cfsm::ReactiveFunction& rf,
                                               std::uint64_t limit) {
  const cfsm::Cfsm& machine = rf.machine();
  bdd::BddManager& mgr = rf.manager();
  const vm::SymbolInfo syms = vm::SymbolInfo::from(machine);

  // Classify tests: predicates over state variables only become constants
  // under the level-1 dispatch; the rest are level-2 decision variables.
  std::set<std::string> state_names;
  for (const cfsm::StateVar& v : machine.state()) state_names.insert(v.name);
  std::vector<const cfsm::TestVariable*> decision_tests;
  std::vector<const cfsm::TestVariable*> state_tests;
  for (const cfsm::TestVariable& t : rf.tests()) {
    bool state_only = true;
    for (const std::string& v : expr::support(*t.predicate))
      state_only = state_only && state_names.count(v) != 0;
    (state_only ? state_tests : decision_tests).push_back(&t);
  }

  std::uint64_t n_states = 1;
  for (const cfsm::StateVar& v : machine.state()) {
    n_states *= static_cast<std::uint64_t>(v.domain);
    if (n_states > limit) return std::nullopt;
  }
  const size_t k = decision_tests.size();
  if (k >= 20 || n_states > (limit >> k)) return std::nullopt;
  const std::uint64_t n_dec = 1ull << k;

  // Output functions once.
  std::vector<bdd::Bdd> gz;
  for (const cfsm::ActionVariable& a : rf.actions())
    gz.push_back(rf.output_function(a.bdd_var));

  vm::RoutineBuilder b(syms, machine.name() + "_multiway");
  b.emit_prologue();
  using vm::Instr;
  using vm::Opcode;
  auto I = [](Opcode op, int a = 0, int bb = 0, int c = 0,
              std::int64_t imm = 0, expr::Op alu = expr::Op::kAdd) {
    return Instr{op, a, bb, c, imm, alu, ""};
  };

  // --- Level 1: pack the state valuation into r0. -----------------------------
  b.emit(I(Opcode::kLdi, 0, 0, 0, 0));
  for (const cfsm::StateVar& v : machine.state()) {
    b.emit(I(Opcode::kLdi, 1, 0, 0, v.domain));
    b.emit(I(Opcode::kAlu, 0, 0, 1, 0, expr::Op::kMul));
    b.emit(I(Opcode::kLd, 1, b.slot(v.name + "__in")));
    b.emit(I(Opcode::kAlu, 0, 0, 1, 0, expr::Op::kAdd));
  }
  const size_t jmpind1_at = b.here();
  b.emit(I(Opcode::kJmpInd, 0, 0));
  b.at(jmpind1_at).b = static_cast<int>(b.here());

  // Level-1 jump table: one kJmp per state valuation (fixed up later).
  std::vector<size_t> table1(n_states);
  for (std::uint64_t s = 0; s < n_states; ++s) {
    table1[s] = b.here();
    b.emit(I(Opcode::kJmp, 0, 0));
  }

  // --- Per-state level-2 dispatch + shared action blocks. ----------------------
  std::map<std::string, size_t> block_label;  // action-set key -> label
  std::vector<std::pair<size_t, std::string>> block_fixups;  // (jmp, key)
  std::vector<std::pair<std::string, std::vector<sgraph::ActionOp>>>
      block_defs;  // emitted at the end

  for (std::uint64_t s = 0; s < n_states; ++s) {
    b.at(table1[s]).b = static_cast<int>(b.here());

    // Concrete state valuation for this branch (mixed radix decode, last
    // declared variable is the least-significant digit — matching the pack).
    std::map<std::string, std::int64_t> sval;
    {
      std::uint64_t rem = s;
      for (auto it = machine.state().rbegin(); it != machine.state().rend();
           ++it) {
        sval[it->name] =
            static_cast<std::int64_t>(rem % static_cast<std::uint64_t>(it->domain));
        rem /= static_cast<std::uint64_t>(it->domain);
      }
    }
    const expr::Env state_env = [&sval](const std::string& name) {
      auto it = sval.find(name);
      POLIS_CHECK_MSG(it != sval.end(), "unbound state variable " << name);
      return it->second;
    };

    // Level-2 index: evaluate each decision predicate, pack bits into r0.
    b.emit(I(Opcode::kLdi, 0, 0, 0, 0));
    for (const cfsm::TestVariable* t : decision_tests) {
      b.compile_expr(*t->predicate, 1);
      b.emit(I(Opcode::kLdi, 2, 0, 0, 0));
      b.emit(I(Opcode::kAlu, 1, 1, 2, 0, expr::Op::kNe));  // normalise 0/1
      b.emit(I(Opcode::kLdi, 2, 0, 0, 2));
      b.emit(I(Opcode::kAlu, 0, 0, 2, 0, expr::Op::kMul));
      b.emit(I(Opcode::kAlu, 0, 0, 1, 0, expr::Op::kAdd));
    }
    const size_t jmpind2_at = b.here();
    b.emit(I(Opcode::kJmpInd, 0, 0));
    b.at(jmpind2_at).b = static_cast<int>(b.here());

    for (std::uint64_t d = 0; d < n_dec; ++d) {
      // Full test valuation: state predicates evaluated concretely,
      // decision bits from d (first test = most significant bit).
      std::map<int, bool> tv;
      for (const cfsm::TestVariable* t : state_tests)
        tv[t->bdd_var] = expr::evaluate(*t->predicate, state_env) != 0;
      for (size_t i = 0; i < k; ++i)
        tv[decision_tests[i]->bdd_var] = ((d >> (k - 1 - i)) & 1) != 0;

      std::vector<sgraph::ActionOp> block;
      std::string key;
      for (size_t ai = 0; ai < rf.actions().size(); ++ai) {
        const bool on = mgr.eval(gz[ai], [&tv](int var) {
          auto it = tv.find(var);
          return it != tv.end() && it->second;
        });
        if (!on) continue;
        block.push_back(to_action_op(rf, rf.actions()[ai]));
        key += block.back().label() + ";";
      }
      if (block_label.count(key) == 0) {
        block_label[key] = 0;  // placeholder, defined after all tables
        block_defs.emplace_back(key, std::move(block));
      }
      block_fixups.emplace_back(b.here(), key);
      b.emit(I(Opcode::kJmp, 0, 0));
    }
  }

  // Deduplicated action blocks.
  MultiwayResult result;
  for (auto& [key, block] : block_defs) {
    block_label[key] = b.here();
    for (const sgraph::ActionOp& op : block) b.compile_action(op);
    b.emit(I(Opcode::kRet));
    result.blocks.push_back(block);
  }
  for (const auto& [at, key] : block_fixups)
    b.at(at).b = static_cast<int>(block_label.at(key));

  result.level1_entries = n_states;
  result.decision_tests = k;
  result.action_blocks = block_defs.size();
  for (const cfsm::TestVariable* t : decision_tests)
    result.decision_predicates.push_back(t->predicate);
  result.reaction = b.finish();
  return result;
}

estim::Estimate estimate_multiway(const MultiwayResult& result,
                                  const cfsm::ReactiveFunction& rf,
                                  const estim::CostModel& m,
                                  const estim::EstimateContext& ctx) {
  const cfsm::Cfsm& machine = rf.machine();
  const double n_states = static_cast<double>(result.level1_entries);
  const double n_dec_entries =
      std::pow(2.0, static_cast<double>(result.decision_tests));

  // --- Size ---------------------------------------------------------------
  double size = m.sz_func_enter + ctx.num_state_vars * m.sz_copy_in_per_var +
                // level-1 packing: per state var a constant, MUL, load, ADD.
                m.sz_leaf +
                static_cast<double>(machine.state().size()) *
                    (2 * m.sz_leaf + m.sz_op_mul + m.sz_op_alu) +
                m.sz_goto /* computed jump */ +
                n_states * m.sz_multiway_entry;
  double dec_index_size = m.sz_leaf;  // idx := 0
  for (const expr::ExprRef& p : result.decision_predicates)
    dec_index_size += estim::expr_bytes(*p, m, ctx) +
                      (m.sz_leaf + m.sz_op_alu) /* normalise */ +
                      (m.sz_leaf + m.sz_op_mul + m.sz_op_alu) /* pack */;
  size += n_states * (dec_index_size + m.sz_goto +
                      n_dec_entries * m.sz_multiway_entry);

  double dec_index_cycles = m.cyc_leaf;
  for (const expr::ExprRef& p : result.decision_predicates)
    dec_index_cycles += estim::expr_cycles(*p, m, ctx) +
                        (m.cyc_leaf + m.cyc_op_alu) +
                        (m.cyc_leaf + m.cyc_op_mul + m.cyc_op_alu);

  // --- Blocks --------------------------------------------------------------
  auto action_cost = [&](const sgraph::ActionOp& op, bool bytes) -> double {
    switch (op.kind) {
      case sgraph::ActionOp::Kind::kConsume:
        return bytes ? m.sz_consume : m.cyc_consume;
      case sgraph::ActionOp::Kind::kEmitPure:
        return bytes ? m.sz_assign_emit : m.cyc_assign_emit;
      case sgraph::ActionOp::Kind::kEmitValued:
        return (bytes ? m.sz_assign_emit + m.sz_assign_emit_value +
                            estim::expr_bytes(*op.value, m, ctx)
                      : m.cyc_assign_emit + m.cyc_assign_emit_value +
                            estim::expr_cycles(*op.value, m, ctx));
      case sgraph::ActionOp::Kind::kAssignVar:
        return (bytes ? estim::expr_bytes(*op.value, m, ctx) + m.sz_assign_store
                      : estim::expr_cycles(*op.value, m, ctx) +
                            m.cyc_assign_store);
    }
    return 0;
  };

  double min_block = std::numeric_limits<double>::infinity();
  double max_block = 0;
  for (const std::vector<sgraph::ActionOp>& block : result.blocks) {
    double bytes = m.sz_func_return;
    double cycles = 0;
    for (const sgraph::ActionOp& op : block) {
      bytes += action_cost(op, true);
      cycles += action_cost(op, false);
    }
    size += bytes;
    min_block = std::min(min_block, cycles);
    max_block = std::max(max_block, cycles);
  }
  if (result.blocks.empty()) min_block = 0;

  // --- Cycles: a fixed dispatch spine plus the block. ------------------------
  const double spine =
      m.cyc_func_enter + ctx.num_state_vars * m.cyc_copy_in_per_var +
      m.cyc_leaf +
      static_cast<double>(machine.state().size()) *
          (2 * m.cyc_leaf + m.cyc_op_mul + m.cyc_op_alu) +
      m.cyc_multiway_base + dec_index_cycles + m.cyc_multiway_base +
      m.cyc_multiway_per_edge *
          0.5 * (n_states + n_dec_entries) /* a + b·i, average i */ +
      m.cyc_func_return;

  estim::Estimate e;
  e.size_bytes = static_cast<long long>(std::llround(size));
  e.min_cycles = static_cast<long long>(std::llround(spine + min_block));
  e.max_cycles = static_cast<long long>(std::llround(spine + max_block));
  return e;
}

}  // namespace polis::baseline
