#include "baseline/boolnet.hpp"

#include <cmath>
#include <map>
#include <sstream>
#include <unordered_map>

#include "util/check.hpp"

namespace polis::baseline {

namespace {

sgraph::ActionOp to_action_op(const cfsm::ReactiveFunction& rf,
                              const cfsm::ActionVariable& av) {
  sgraph::ActionOp op;
  switch (av.kind) {
    case cfsm::ActionVariable::Kind::kConsume:
      op.kind = sgraph::ActionOp::Kind::kConsume;
      break;
    case cfsm::ActionVariable::Kind::kAssignState:
      op.kind = sgraph::ActionOp::Kind::kAssignVar;
      op.target = av.target;
      op.value = av.value;
      break;
    case cfsm::ActionVariable::Kind::kEmit: {
      const cfsm::Signal* sig = rf.machine().find_output(av.target);
      POLIS_CHECK(sig != nullptr);
      op.kind = sig->is_pure() ? sgraph::ActionOp::Kind::kEmitPure
                               : sgraph::ActionOp::Kind::kEmitValued;
      op.target = av.target;
      op.value = av.value;
      break;
    }
  }
  return op;
}

}  // namespace

BoolnetProgram build_boolnet(cfsm::ReactiveFunction& rf) {
  bdd::BddManager& mgr = rf.manager();

  // Output functions, with reference counts over the shared BDD.
  std::vector<bdd::Bdd> roots;
  for (const cfsm::ActionVariable& a : rf.actions())
    roots.push_back(rf.output_function(a.bdd_var));

  std::unordered_map<std::uint32_t, int> refs;
  {
    std::vector<bdd::Bdd> stack = roots;
    std::unordered_map<std::uint32_t, bool> visited;
    for (const bdd::Bdd& r : roots) refs[r.raw_index()]++;
    while (!stack.empty()) {
      const bdd::Bdd n = stack.back();
      stack.pop_back();
      if (n.is_constant() || visited[n.raw_index()]) continue;
      visited[n.raw_index()] = true;
      const bdd::Bdd hi = n.high();
      const bdd::Bdd lo = n.low();
      refs[hi.raw_index()]++;
      refs[lo.raw_index()]++;
      stack.push_back(hi);
      stack.push_back(lo);
    }
  }

  BoolnetProgram out;
  std::unordered_map<std::uint32_t, expr::ExprRef> node_expr;  // temps by ref
  int next_temp = 0;

  // expr_of inlines single-use nodes and references temps for shared ones;
  // defining a temp appends its step (children first, so steps are ordered).
  auto expr_of = [&](const bdd::Bdd& n, auto&& self) -> expr::ExprRef {
    if (n.is_zero()) return expr::constant(0);
    if (n.is_one()) return expr::constant(1);
    auto it = node_expr.find(n.raw_index());
    if (it != node_expr.end()) return it->second;

    const expr::ExprRef cond = rf.test_of(n.top_var()).predicate;
    const expr::ExprRef hi = self(n.high(), self);
    const expr::ExprRef lo = self(n.low(), self);
    expr::ExprRef body;
    if (hi->op() == expr::Op::kConst && lo->op() == expr::Op::kConst) {
      body = hi->value() != 0 ? cond : expr::lnot(cond);
    } else if (hi->op() == expr::Op::kConst && hi->value() != 0) {
      body = expr::lor(cond, lo);
    } else if (hi->op() == expr::Op::kConst) {
      body = expr::land(expr::lnot(cond), lo);
    } else if (lo->op() == expr::Op::kConst && lo->value() == 0) {
      body = expr::land(cond, hi);
    } else if (lo->op() == expr::Op::kConst) {
      body = expr::lor(expr::lnot(cond), hi);
    } else {
      body = expr::ite(cond, hi, lo);
    }

    expr::ExprRef result = body;
    if (refs[n.raw_index()] > 1) {
      const std::string temp = "__t" + std::to_string(next_temp++);
      out.steps.push_back(BoolnetStep{temp, body});
      out.shared_nodes++;
      result = expr::var(temp);
    }
    node_expr.emplace(n.raw_index(), result);
    return result;
  };

  for (size_t i = 0; i < rf.actions().size(); ++i) {
    const expr::ExprRef guard = expr_of(roots[i], expr_of);
    const sgraph::ActionOp op = to_action_op(rf, rf.actions()[i]);
    if (guard->op() == expr::Op::kConst && guard->value() == 0)
      continue;  // never executes
    out.actions.emplace_back(
        op, guard->op() == expr::Op::kConst ? nullptr : guard);
  }
  (void)mgr;
  return out;
}

estim::Estimate estimate_boolnet(const BoolnetProgram& program,
                                 const estim::CostModel& m,
                                 const estim::EstimateContext& ctx) {
  double size = m.sz_func_enter + ctx.num_state_vars * m.sz_copy_in_per_var +
                m.sz_func_return;
  double fixed = m.cyc_func_enter + ctx.num_state_vars * m.cyc_copy_in_per_var +
                 m.cyc_func_return;
  double variable_min = 0;
  double variable_max = 0;

  for (const BoolnetStep& s : program.steps) {
    size += estim::expr_bytes(*s.value, m, ctx) + m.sz_assign_store;
    fixed += estim::expr_cycles(*s.value, m, ctx) + m.cyc_assign_store;
  }
  for (const auto& [op, guard] : program.actions) {
    double act_cycles = 0;
    double act_bytes = 0;
    switch (op.kind) {
      case sgraph::ActionOp::Kind::kConsume:
        act_cycles = m.cyc_consume;
        act_bytes = m.sz_consume;
        break;
      case sgraph::ActionOp::Kind::kEmitPure:
        act_cycles = m.cyc_assign_emit;
        act_bytes = m.sz_assign_emit;
        break;
      case sgraph::ActionOp::Kind::kEmitValued:
        act_cycles = m.cyc_assign_emit + m.cyc_assign_emit_value +
                     estim::expr_cycles(*op.value, m, ctx);
        act_bytes = m.sz_assign_emit + m.sz_assign_emit_value +
                    estim::expr_bytes(*op.value, m, ctx);
        break;
      case sgraph::ActionOp::Kind::kAssignVar:
        act_cycles =
            estim::expr_cycles(*op.value, m, ctx) + m.cyc_assign_store;
        act_bytes = estim::expr_bytes(*op.value, m, ctx) + m.sz_assign_store;
        break;
    }
    if (guard == nullptr) {
      fixed += act_cycles;
      size += act_bytes;
    } else {
      const double g = estim::expr_cycles(*guard, m, ctx);
      size += estim::expr_bytes(*guard, m, ctx) + m.sz_branch + act_bytes;
      variable_min += g + m.cyc_test_edge_false;
      variable_max += g + m.cyc_test_edge_true + act_cycles;
    }
  }

  estim::Estimate e;
  e.size_bytes = static_cast<long long>(std::llround(size));
  e.min_cycles = static_cast<long long>(std::llround(fixed + variable_min));
  e.max_cycles = static_cast<long long>(std::llround(fixed + variable_max));
  return e;
}

std::string boolnet_to_c(const BoolnetProgram& program) {
  std::ostringstream os;
  for (const BoolnetStep& s : program.steps)
    os << "  int " << s.temp << " = " << expr::to_c(*s.value) << ";\n";
  for (const auto& [op, guard] : program.actions) {
    os << "  ";
    if (guard != nullptr) os << "if (" << expr::to_c(*guard) << ") ";
    os << op.label() << ";\n";
  }
  return os.str();
}

}  // namespace polis::baseline
