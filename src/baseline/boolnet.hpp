// Outputs-before-inputs code generation through a shared Boolean network —
// the analogue of ESTEREL v5's circuit-based compilation with Boolean-
// circuit optimisation (§III-B3c, Table III row "ESTEREL_OPT").
//
// Every action variable's output function g_z is taken as a BDD; BDD nodes
// shared between (or within) the g_z become temporary C variables, and each
// action is guarded by its root expression. The resulting program has no
// TEST vertices: all executions take the same time apart from the guarded
// action bodies — the paper's "absolute exactness in execution time
// prediction" property.
#pragma once

#include <string>
#include <vector>

#include "cfsm/reactive.hpp"
#include "estim/estimate.hpp"
#include "sgraph/sgraph.hpp"

namespace polis::baseline {

struct BoolnetStep {
  std::string temp;       // temporary variable name
  expr::ExprRef value;    // over tests and earlier temps
};

struct BoolnetProgram {
  std::vector<BoolnetStep> steps;
  /// Action plus its guard expression (over tests/temps); constant-true
  /// guards are represented as nullptr.
  std::vector<std::pair<sgraph::ActionOp, expr::ExprRef>> actions;
  size_t shared_nodes = 0;  // BDD nodes promoted to temps
};

BoolnetProgram build_boolnet(cfsm::ReactiveFunction& rf);

/// Cost of the straight-line Boolean-network program under the cost model.
estim::Estimate estimate_boolnet(const BoolnetProgram& program,
                                 const estim::CostModel& model,
                                 const estim::EstimateContext& context);

/// C rendering (for inspection and the examples).
std::string boolnet_to_c(const BoolnetProgram& program);

}  // namespace polis::baseline
