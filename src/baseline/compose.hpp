// Synchronous composition of a CFSM network into a single explicit FSM —
// the baseline the paper compares against (§II-A1, §V Table III): ESTEREL-
// style whole-design compilation, where internal communication disappears
// (zero-delay within a tick) at the price of an explicit product state
// space and correspondingly larger code.
//
// The network's internal-signal graph must be acyclic; instances react in
// topological order inside each tick and internal emissions are delivered
// instantaneously downstream. The composed machine is produced as an
// ordinary Cfsm (one fully-specified rule per reachable (state, snapshot)
// class), so the entire synthesis pipeline — χ, s-graph, estimation, VM —
// applies to it unchanged.
#pragma once

#include <cstdint>
#include <memory>
#include <optional>

#include "cfsm/cfsm.hpp"
#include "cfsm/network.hpp"

namespace polis::baseline {

struct ComposeOptions {
  /// Abort if reachable-states × external-snapshots exceeds this.
  std::uint64_t explosion_limit = 1u << 22;
};

struct ComposeResult {
  std::shared_ptr<cfsm::Cfsm> machine;
  size_t reachable_states = 0;
  size_t rules = 0;
};

/// Returns nullopt if the internal-signal graph is cyclic, a net has more
/// than one producer, or the product space exceeds the limit.
std::optional<ComposeResult> synchronous_compose(
    const cfsm::Network& network, const ComposeOptions& options = {});

}  // namespace polis::baseline
