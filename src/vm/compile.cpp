#include "vm/compile.hpp"

#include <unordered_map>

#include "sgraph/dataflow.hpp"
#include "util/check.hpp"

namespace polis::vm {

SymbolInfo SymbolInfo::from(const cfsm::Cfsm& machine) {
  SymbolInfo s;
  for (const cfsm::StateVar& v : machine.state()) {
    s.state_vars.insert(v.name);
    s.state_domain[v.name] = v.domain;
  }
  for (const cfsm::Signal& sig : machine.inputs()) {
    s.presence_to_signal[cfsm::presence_name(sig.name)] = sig.name;
    if (!sig.is_pure()) s.input_value_vars.insert(cfsm::value_name(sig.name));
  }
  for (const cfsm::Signal& sig : machine.outputs())
    s.signal_domain[sig.name] = sig.domain;
  return s;
}

// --- RoutineBuilder ---------------------------------------------------------------

RoutineBuilder::RoutineBuilder(const SymbolInfo& syms, std::string name)
    : RoutineBuilder(syms, std::move(name), syms.state_vars) {}

RoutineBuilder::RoutineBuilder(const SymbolInfo& syms, std::string name,
                               std::set<std::string> buffered_state_vars)
    : syms_(&syms), buffered_(std::move(buffered_state_vars)) {
  out_.program.name = std::move(name);
  // Slot layout: one live slot per state variable, plus a copy-in shadow
  // for the buffered ones; one slot per valued input.
  for (const std::string& sv : syms.state_vars) {
    const int live = slot(sv);
    if (buffered_.count(sv) != 0) {
      const int shadow = slot(sv + "__in");
      out_.copy_in.emplace_back(live, shadow);
    }
    out_.slot_wrap_domain[live] = syms.state_domain.at(sv);
  }
  for (const std::string& iv : syms.input_value_vars) slot(iv);
  out_.signal_domain = syms.signal_domain;
}

int RoutineBuilder::slot(const std::string& name) {
  auto it = slot_of_.find(name);
  if (it != slot_of_.end()) return it->second;
  const int s = static_cast<int>(out_.program.slot_names.size());
  out_.program.slot_names.push_back(name);
  slot_of_.emplace(name, s);
  return s;
}

void RoutineBuilder::emit(Instr instr) {
  out_.program.code.push_back(std::move(instr));
}

void RoutineBuilder::emit_prologue() {
  POLIS_CHECK(!prologue_done_);
  prologue_done_ = true;
  emit(Instr{Opcode::kEnter, static_cast<int>(out_.copy_in.size()), 0, 0, 0,
             expr::Op::kAdd, ""});
}

int RoutineBuilder::compile_expr(const expr::Expr& e, int dest) {
  POLIS_CHECK_MSG(dest < 62, "expression too deep for the register file");
  switch (e.op()) {
    case expr::Op::kConst:
      emit(Instr{Opcode::kLdi, dest, 0, 0, e.value(), expr::Op::kAdd, ""});
      return dest;
    case expr::Op::kVar: {
      auto it = syms_->presence_to_signal.find(e.name());
      if (it != syms_->presence_to_signal.end()) {
        emit(Instr{Opcode::kDetect, dest, 0, 0, 0, expr::Op::kAdd,
                   it->second});
        return dest;
      }
      // Buffered state variables read their copy-in shadow (§V-B).
      const std::string name = buffered_.count(e.name()) != 0
                                   ? e.name() + "__in"
                                   : e.name();
      POLIS_CHECK_MSG(syms_->state_vars.count(e.name()) != 0 ||
                          syms_->input_value_vars.count(e.name()) != 0,
                      "unknown variable in expression: " << e.name());
      emit(Instr{Opcode::kLd, dest, slot(name), 0, 0, expr::Op::kAdd, ""});
      return dest;
    }
    case expr::Op::kNeg: {
      compile_expr(*e.args()[0], dest);
      emit(Instr{Opcode::kLdi, dest + 1, 0, 0, 0, expr::Op::kAdd, ""});
      emit(Instr{Opcode::kAlu, dest, dest + 1, dest, 0, expr::Op::kSub, ""});
      return dest;
    }
    case expr::Op::kNot: {
      compile_expr(*e.args()[0], dest);
      emit(Instr{Opcode::kLdi, dest + 1, 0, 0, 0, expr::Op::kAdd, ""});
      emit(Instr{Opcode::kAlu, dest, dest, dest + 1, 0, expr::Op::kEq, ""});
      return dest;
    }
    case expr::Op::kIte: {
      compile_expr(*e.args()[0], dest);
      const size_t brz_at = here();
      emit(Instr{Opcode::kBrz, dest, 0, 0, 0, expr::Op::kAdd, ""});
      compile_expr(*e.args()[1], dest);
      const size_t jmp_at = here();
      emit(Instr{Opcode::kJmp, 0, 0, 0, 0, expr::Op::kAdd, ""});
      at(brz_at).b = static_cast<int>(here());
      compile_expr(*e.args()[2], dest);
      at(jmp_at).b = static_cast<int>(here());
      return dest;
    }
    default: {  // binary operator
      compile_expr(*e.args()[0], dest);
      compile_expr(*e.args()[1], dest + 1);
      emit(Instr{Opcode::kAlu, dest, dest, dest + 1, 0, e.op(), ""});
      return dest;
    }
  }
}

void RoutineBuilder::compile_action(const sgraph::ActionOp& op) {
  switch (op.kind) {
    case sgraph::ActionOp::Kind::kConsume:
      emit(Instr{Opcode::kConsume, 0, 0, 0, 0, expr::Op::kAdd, ""});
      break;
    case sgraph::ActionOp::Kind::kEmitPure:
      emit(Instr{Opcode::kEmit, 0, -1, 0, 0, expr::Op::kAdd, op.target});
      break;
    case sgraph::ActionOp::Kind::kEmitValued: {
      const int r = compile_expr(*op.value, 0);
      emit(Instr{Opcode::kEmit, 0, r, 0, 0, expr::Op::kAdd, op.target});
      break;
    }
    case sgraph::ActionOp::Kind::kAssignVar: {
      const int r = compile_expr(*op.value, 0);
      emit(Instr{Opcode::kSt, slot(op.target), r, 0, 0, expr::Op::kAdd, ""});
      break;
    }
  }
}

CompiledReaction RoutineBuilder::finish() { return std::move(out_); }

// --- S-graph compiler ---------------------------------------------------------------

namespace {

class Compiler {
 public:
  Compiler(const sgraph::Sgraph& graph, const SymbolInfo& syms,
           std::set<std::string> buffered)
      : graph_(graph), builder_(syms, graph.name(), std::move(buffered)) {}

  CompiledReaction run() {
    builder_.emit_prologue();

    const std::vector<sgraph::NodeId> layout = graph_.topo_order();
    // layout[0] is BEGIN (skipped: kEnter falls through into the entry,
    // which is always layout[1]); END is emitted as the final kRet.
    POLIS_CHECK(layout.size() >= 2);
    POLIS_CHECK(graph_.node(layout[0]).kind == sgraph::Kind::kBegin);
    POLIS_CHECK(graph_.node(layout.back()).kind == sgraph::Kind::kEnd);
    if (layout.size() > 2) {
      POLIS_CHECK(layout[1] == graph_.node(graph_.begin()).next);
    }

    for (size_t i = 1; i < layout.size(); ++i) {
      const sgraph::NodeId id = layout[i];
      node_label_[id] = static_cast<int>(builder_.here());
      const sgraph::Node& n = graph_.node(id);
      const std::optional<sgraph::NodeId> fall =
          i + 1 < layout.size() ? std::optional<sgraph::NodeId>(layout[i + 1])
                                : std::nullopt;
      switch (n.kind) {
        case sgraph::Kind::kEnd:
          builder_.emit(Instr{Opcode::kRet, 0, 0, 0, 0, expr::Op::kAdd, ""});
          break;
        case sgraph::Kind::kTest: {
          const int r = builder_.compile_expr(*n.predicate, 0);
          if (fall.has_value() && *fall == n.when_false &&
              *fall != n.when_true) {
            // Fall through to the false target, branch to true.
            branch_to(Opcode::kBrnz, r, n.when_true);
          } else {
            // Branch to the false target; fall through (or jump) to true.
            branch_to(Opcode::kBrz, r, n.when_false);
            goto_unless_fallthrough(n.when_true, fall);
          }
          break;
        }
        case sgraph::Kind::kAssign: {
          size_t skip_fixup = 0;
          bool conditional = false;
          if (n.condition != nullptr) {
            const int r = builder_.compile_expr(*n.condition, 0);
            skip_fixup = builder_.here();
            conditional = true;
            builder_.emit(
                Instr{Opcode::kBrz, r, 0, 0, 0, expr::Op::kAdd, ""});
          }
          builder_.compile_action(n.action);
          if (conditional)
            builder_.at(skip_fixup).b = static_cast<int>(builder_.here());
          goto_unless_fallthrough(n.next, fall);
          break;
        }
        case sgraph::Kind::kBegin:
          POLIS_CHECK_MSG(false, "BEGIN must be first in topological order");
          break;
      }
    }

    // Resolve node-label fixups.
    for (const auto& [instr_idx, node] : node_fixups_) {
      auto it = node_label_.find(node);
      POLIS_CHECK(it != node_label_.end());
      builder_.at(static_cast<size_t>(instr_idx)).b = it->second;
    }
    return builder_.finish();
  }

 private:
  void branch_to(Opcode brop, int reg, sgraph::NodeId target) {
    node_fixups_.emplace_back(static_cast<int>(builder_.here()), target);
    builder_.emit(Instr{brop, reg, 0, 0, 0, expr::Op::kAdd, ""});
  }

  void goto_unless_fallthrough(sgraph::NodeId target,
                               std::optional<sgraph::NodeId> fall) {
    if (fall.has_value() && *fall == target) return;
    node_fixups_.emplace_back(static_cast<int>(builder_.here()), target);
    builder_.emit(Instr{Opcode::kJmp, 0, 0, 0, 0, expr::Op::kAdd, ""});
  }

  const sgraph::Sgraph& graph_;
  RoutineBuilder builder_;
  std::unordered_map<sgraph::NodeId, int> node_label_;
  std::vector<std::pair<int, sgraph::NodeId>> node_fixups_;
};

}  // namespace

CompiledReaction compile(const sgraph::Sgraph& graph, const SymbolInfo& syms,
                         const CompileOptions& options) {
  const std::set<std::string> buffered =
      options.optimize_copy_in
          ? sgraph::vars_needing_copy_in(graph, syms.state_vars)
          : syms.state_vars;
  Compiler compiler(graph, syms, buffered);
  return compiler.run();
}

}  // namespace polis::vm
