// Cycle-counted execution of compiled reaction routines, plus exhaustive
// timing measurement over a CFSM's concrete input space. This produces the
// "measured" columns of Table I (the paper measured with an INTROL-compiled
// binary and a 68HC11 cycle calculator; our VM plays both roles).
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <optional>
#include <string>
#include <vector>

#include "cfsm/cfsm.hpp"
#include "vm/compile.hpp"
#include "vm/isa.hpp"

namespace polis::vm {

struct RunResult {
  long long cycles = 0;
  int instructions = 0;
  bool consumed = false;
  std::vector<std::pair<std::string, std::int64_t>> emissions;
  std::map<std::string, std::int64_t> memory_out;  // by slot name
};

/// Executes one reaction. `mem_init` seeds memory slots by name (unset
/// slots start at 0); `present` answers RTOS presence queries.
RunResult run(const CompiledReaction& reaction, const TargetProfile& profile,
              const std::map<std::string, std::int64_t>& mem_init,
              const std::function<bool(const std::string&)>& present);

/// Convenience wrapper: runs one reaction for a concrete snapshot + state
/// and decodes the result as a cfsm::Reaction (used by the equivalence
/// tests: reference semantics == s-graph eval == VM execution).
cfsm::Reaction run_reaction(const CompiledReaction& reaction,
                            const TargetProfile& profile,
                            const cfsm::Cfsm& machine,
                            const cfsm::Snapshot& snapshot,
                            const std::map<std::string, std::int64_t>& state,
                            long long* cycles_out = nullptr);

struct MeasuredTiming {
  long long min_cycles = 0;
  long long max_cycles = 0;
  std::uint64_t cases = 0;
};

/// Exhaustively measures min/max reaction cycles over the machine's concrete
/// space (nullopt if it exceeds `limit` combinations).
std::optional<MeasuredTiming> measure_timing(
    const CompiledReaction& reaction, const TargetProfile& profile,
    const cfsm::Cfsm& machine, std::uint64_t limit = 1u << 22);

}  // namespace polis::vm
