// A small cycle-counted virtual instruction set standing in for the paper's
// measurement targets (Motorola 68HC11 + INTROL compiler + cycle calculator,
// MIPS R3000 + pixie, §III-C1 / §V).
//
// The VM exists so that "measured" columns of Table I can be produced
// deterministically: the s-graph is compiled to VM code whose byte size is
// the measured code size and whose executed cycle count is the measured
// execution time. RTOS primitives (event detection, emission, consumption)
// are single instructions with target-specific call costs, mirroring the
// paper's treatment of presence tests and emissions as RTOS calls.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "expr/expr.hpp"

namespace polis::vm {

enum class Opcode {
  kLdi,     // r[a] <- imm
  kLd,      // r[a] <- mem[b]
  kSt,      // mem[a] <- r[b]
  kMov,     // r[a] <- r[b]
  kAlu,     // r[a] <- r[b] <alu> r[c]   (binary), or unary on r[b]
  kBrz,     // if r[a] == 0 jump to label b
  kBrnz,    // if r[a] != 0 jump to label b
  kJmp,     // jump to label a
  kJmpInd,  // pc <- b + r[a] (computed jump into a table of kJmp entries)
  kDetect,  // r[a] <- RTOS: presence flag of signal `sym` (consuming view)
  kEmit,    // RTOS: emit signal `sym`; if b >= 0, value is r[b]
  kConsume, // RTOS: mark snapshot consumed
  kEnter,   // function prologue (a = number of copied-in variables)
  kRet,     // function epilogue / return
};

struct Instr {
  Opcode op = Opcode::kRet;
  int a = 0;
  int b = 0;
  int c = 0;
  std::int64_t imm = 0;
  expr::Op alu = expr::Op::kAdd;  // for kAlu
  std::string sym;                // signal name for kDetect/kEmit
};

/// Per-target cost tables: cycles and bytes per instruction style. The two
/// shipped profiles are an 8-bit CISC microcontroller flavour ("hc11") and a
/// 32-bit RISC flavour ("risc32").
struct TargetProfile {
  std::string name;

  // Cycles.
  int cyc_ldi = 2;
  int cyc_ld = 3;
  int cyc_st = 3;
  int cyc_mov = 2;
  int cyc_alu = 2;         // add/sub/compare/logic
  int cyc_mul = 10;
  int cyc_div = 22;
  int cyc_branch_taken = 3;
  int cyc_branch_fall = 1;
  int cyc_jmp = 3;
  int cyc_jmpind = 5;      // computed (jump-table) dispatch
  int cyc_detect = 9;      // RTOS presence-check call
  int cyc_emit = 12;       // RTOS emission call
  int cyc_emit_value_extra = 4;
  int cyc_consume = 6;
  int cyc_enter = 5;
  int cyc_enter_per_copy = 4;  // copy-in of one state variable (§V-B)
  int cyc_ret = 5;

  // Bytes.
  int sz_ldi = 2;
  int sz_ld = 2;
  int sz_st = 2;
  int sz_mov = 1;
  int sz_alu = 1;
  int sz_mul = 1;
  int sz_div = 1;
  int sz_branch = 2;       // near conditional branch
  int sz_jmp = 3;
  int sz_jmpind = 3;
  int sz_detect = 3;       // call + argument
  int sz_emit = 3;
  int sz_emit_value_extra = 2;
  int sz_consume = 3;
  int sz_enter = 2;
  int sz_enter_per_copy = 4;
  int sz_ret = 1;

  // System parameters (paper: 4 system characterisation parameters).
  int pointer_size = 2;
  int int_size = 2;

  int alu_cycles(expr::Op op) const;
  int alu_bytes(expr::Op op) const;
  int instr_bytes(const Instr& i) const;
};

/// 68HC11-flavoured profile: byte-cheap CISC encodings, expensive multiply
/// and divide, slow RTOS calls.
TargetProfile hc11_like();

/// 32-bit RISC flavour: mostly single-cycle, 4-byte instructions.
TargetProfile risc32_like();

/// A compiled reaction routine.
struct Program {
  std::string name;
  std::vector<Instr> code;
  std::vector<std::string> slot_names;  // memory slot index -> variable name

  int slot_of(const std::string& name) const;  // -1 if absent
  /// Total code size in bytes under `profile`.
  long long size_bytes(const TargetProfile& profile) const;
};

}  // namespace polis::vm
