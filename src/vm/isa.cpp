#include "vm/isa.hpp"

#include "util/check.hpp"

namespace polis::vm {

int TargetProfile::alu_cycles(expr::Op op) const {
  switch (op) {
    case expr::Op::kMul: return cyc_mul;
    case expr::Op::kDiv:
    case expr::Op::kMod: return cyc_div;
    default: return cyc_alu;
  }
}

int TargetProfile::alu_bytes(expr::Op op) const {
  switch (op) {
    case expr::Op::kMul: return sz_mul;
    case expr::Op::kDiv:
    case expr::Op::kMod: return sz_div;
    default: return sz_alu;
  }
}

int TargetProfile::instr_bytes(const Instr& i) const {
  switch (i.op) {
    case Opcode::kLdi: return sz_ldi;
    case Opcode::kLd: return sz_ld;
    case Opcode::kSt: return sz_st;
    case Opcode::kMov: return sz_mov;
    case Opcode::kAlu: return alu_bytes(i.alu);
    case Opcode::kBrz:
    case Opcode::kBrnz: return sz_branch;
    case Opcode::kJmp: return sz_jmp;
    case Opcode::kJmpInd: return sz_jmpind;
    case Opcode::kDetect: return sz_detect;
    case Opcode::kEmit:
      return i.b >= 0 ? sz_emit + sz_emit_value_extra : sz_emit;
    case Opcode::kConsume: return sz_consume;
    case Opcode::kEnter: return sz_enter + i.a * sz_enter_per_copy;
    case Opcode::kRet: return sz_ret;
  }
  return 0;
}

TargetProfile hc11_like() {
  TargetProfile p;
  p.name = "hc11";
  return p;  // the defaults model the 8-bit CISC flavour
}

TargetProfile risc32_like() {
  TargetProfile p;
  p.name = "risc32";
  p.cyc_ldi = 1;
  p.cyc_ld = 2;
  p.cyc_st = 2;
  p.cyc_mov = 1;
  p.cyc_alu = 1;
  p.cyc_mul = 4;
  p.cyc_div = 12;
  p.cyc_branch_taken = 2;
  p.cyc_branch_fall = 1;
  p.cyc_jmp = 1;
  p.cyc_jmpind = 3;
  p.cyc_detect = 6;
  p.cyc_emit = 8;
  p.cyc_emit_value_extra = 2;
  p.cyc_consume = 4;
  p.cyc_enter = 3;
  p.cyc_enter_per_copy = 2;
  p.cyc_ret = 3;
  p.sz_ldi = 4;
  p.sz_ld = 4;
  p.sz_st = 4;
  p.sz_mov = 4;
  p.sz_alu = 4;
  p.sz_mul = 4;
  p.sz_div = 4;
  p.sz_branch = 4;
  p.sz_jmp = 4;
  p.sz_jmpind = 4;
  p.sz_detect = 8;
  p.sz_emit = 8;
  p.sz_emit_value_extra = 4;
  p.sz_consume = 8;
  p.sz_enter = 8;
  p.sz_enter_per_copy = 8;
  p.sz_ret = 4;
  p.pointer_size = 4;
  p.int_size = 4;
  return p;
}

int Program::slot_of(const std::string& name) const {
  for (size_t i = 0; i < slot_names.size(); ++i)
    if (slot_names[i] == name) return static_cast<int>(i);
  return -1;
}

long long Program::size_bytes(const TargetProfile& profile) const {
  long long total = 0;
  for (const Instr& i : code) total += profile.instr_bytes(i);
  return total;
}

}  // namespace polis::vm
