// Compiles an s-graph into a VM reaction routine (the analogue of §III-B4's
// translation to C followed by cross-compilation for the target MCU).
//
// Layout follows the s-graph's topological order with fall-through where
// possible and near jumps otherwise — this is where DAG sharing pays off in
// bytes, exactly the mechanism the paper exploits by encoding the BDD
// branching structure in the instruction stream (§II-A3).
//
// Entry performs the copy-in of every state variable into a shadow slot
// (the safe next-state buffering described in §V-B); expression reads of a
// state variable go to the shadow, writes go to the live slot.
#pragma once

#include <map>
#include <optional>
#include <set>
#include <string>

#include "cfsm/cfsm.hpp"
#include "sgraph/sgraph.hpp"
#include "vm/isa.hpp"

namespace polis::vm {

/// Name-class information the compiler needs about a machine's interface.
struct SymbolInfo {
  std::set<std::string> state_vars;                      // copied in on entry
  std::map<std::string, std::string> presence_to_signal; // present_x -> x
  std::set<std::string> input_value_vars;                // v_x
  std::map<std::string, int> state_domain;               // state var -> domain
  std::map<std::string, int> signal_domain;              // output sig -> domain

  static SymbolInfo from(const cfsm::Cfsm& machine);
};

/// Compiled program plus the copy-in plan and wrap domains used at run time.
struct CompiledReaction {
  Program program;
  std::vector<std::pair<int, int>> copy_in;  // (state slot, shadow slot)
  std::map<int, int> slot_wrap_domain;       // slot -> domain (writes wrap)
  std::map<std::string, int> signal_domain;  // emission value wrap
};

struct CompileOptions {
  /// Run the §V-B data-flow analysis and buffer only the state variables
  /// with a write-before-read hazard (reduces RAM, copy-in time and code).
  bool optimize_copy_in = false;
};

CompiledReaction compile(const sgraph::Sgraph& graph, const SymbolInfo& syms,
                         const CompileOptions& options = {});

/// Low-level routine assembly shared by the s-graph compiler and the
/// baseline code generators (e.g. the two-level multiway jump of Table II):
/// slot interning, copy-in planning, expression compilation and the kEnter /
/// kRet frame.
class RoutineBuilder {
 public:
  /// Buffers (copies in) every state variable.
  RoutineBuilder(const SymbolInfo& syms, std::string name);
  /// Buffers only `buffered_state_vars`; other state variables are read
  /// directly from their live slot (§V-B data-flow optimization).
  RoutineBuilder(const SymbolInfo& syms, std::string name,
                 std::set<std::string> buffered_state_vars);

  /// Memory slot for a variable name (interned on first use).
  int slot(const std::string& name);

  void emit(Instr instr);
  size_t here() const { return out_.program.code.size(); }
  Instr& at(size_t index) { return out_.program.code[index]; }

  /// Emits the kEnter frame (call once, before any other code).
  void emit_prologue();

  /// Compiles `e` into register `dest` (appends instructions); presence
  /// variables become kDetect, state variables read their shadow slot.
  int compile_expr(const expr::Expr& e, int dest);

  /// Emits one action (emission / store / consume).
  void compile_action(const sgraph::ActionOp& op);

  const SymbolInfo& syms() const { return *syms_; }

  CompiledReaction finish();

 private:
  const SymbolInfo* syms_;
  std::set<std::string> buffered_;
  CompiledReaction out_;
  std::map<std::string, int> slot_of_;
  bool prologue_done_ = false;
};

}  // namespace polis::vm
