#include "vm/machine.hpp"

#include <algorithm>

#include "util/check.hpp"

namespace polis::vm {

RunResult run(const CompiledReaction& reaction, const TargetProfile& profile,
              const std::map<std::string, std::int64_t>& mem_init,
              const std::function<bool(const std::string&)>& present) {
  const Program& prog = reaction.program;
  std::vector<std::int64_t> mem(prog.slot_names.size(), 0);
  for (size_t i = 0; i < prog.slot_names.size(); ++i) {
    auto it = mem_init.find(prog.slot_names[i]);
    if (it != mem_init.end()) mem[i] = it->second;
  }
  std::int64_t reg[64] = {0};

  RunResult out;
  size_t pc = 0;
  const size_t guard = prog.code.size() * 64 + 1024;  // runaway protection
  size_t steps = 0;

  // Corrupt or hand-altered bytecode must trap, not scribble: every index an
  // instruction carries is validated before use, with the offending pc and
  // operand in the diagnostic.
  auto regi = [&](int idx) -> std::int64_t& {
    POLIS_CHECK_MSG(idx >= 0 && idx < 64,
                    "pc " << pc << ": register r" << idx
                          << " out of range [0, 64)");
    return reg[idx];
  };
  auto slot = [&](int idx) -> std::int64_t& {
    POLIS_CHECK_MSG(idx >= 0 && static_cast<size_t>(idx) < mem.size(),
                    "pc " << pc << ": memory slot " << idx
                          << " out of range [0, " << mem.size() << ")");
    return mem[static_cast<size_t>(idx)];
  };
  auto jump_to = [&](std::int64_t target) {
    POLIS_CHECK_MSG(
        target >= 0 && static_cast<size_t>(target) < prog.code.size(),
        "pc " << pc << ": jump target " << target << " out of range [0, "
              << prog.code.size() << ")");
    pc = static_cast<size_t>(target);
  };

  while (pc < prog.code.size()) {
    POLIS_CHECK_MSG(++steps < guard, "VM runaway (bad control flow?)");
    const Instr& i = prog.code[pc];
    out.instructions++;
    switch (i.op) {
      case Opcode::kLdi:
        regi(i.a) = i.imm;
        out.cycles += profile.cyc_ldi;
        ++pc;
        break;
      case Opcode::kLd:
        regi(i.a) = slot(i.b);
        out.cycles += profile.cyc_ld;
        ++pc;
        break;
      case Opcode::kSt: {
        std::int64_t v = regi(i.b);
        auto it = reaction.slot_wrap_domain.find(i.a);
        if (it != reaction.slot_wrap_domain.end())
          v = cfsm::wrap_to_domain(v, it->second);
        slot(i.a) = v;
        out.cycles += profile.cyc_st;
        ++pc;
        break;
      }
      case Opcode::kMov:
        regi(i.a) = regi(i.b);
        out.cycles += profile.cyc_mov;
        ++pc;
        break;
      case Opcode::kAlu:
        regi(i.a) = expr::apply_op(i.alu, regi(i.b), regi(i.c));
        out.cycles += profile.alu_cycles(i.alu);
        ++pc;
        break;
      case Opcode::kBrz:
        if (regi(i.a) == 0) {
          out.cycles += profile.cyc_branch_taken;
          jump_to(i.b);
        } else {
          out.cycles += profile.cyc_branch_fall;
          ++pc;
        }
        break;
      case Opcode::kBrnz:
        if (regi(i.a) != 0) {
          out.cycles += profile.cyc_branch_taken;
          jump_to(i.b);
        } else {
          out.cycles += profile.cyc_branch_fall;
          ++pc;
        }
        break;
      case Opcode::kJmp:
        out.cycles += profile.cyc_jmp;
        jump_to(i.b);
        break;
      case Opcode::kJmpInd:
        out.cycles += profile.cyc_jmpind;
        jump_to(static_cast<std::int64_t>(i.b) + regi(i.a));
        break;
      case Opcode::kDetect:
        regi(i.a) = present(i.sym) ? 1 : 0;
        out.cycles += profile.cyc_detect;
        ++pc;
        break;
      case Opcode::kEmit: {
        std::int64_t v = 0;
        out.cycles += profile.cyc_emit;
        if (i.b >= 0) {
          v = regi(i.b);
          auto it = reaction.signal_domain.find(i.sym);
          if (it != reaction.signal_domain.end())
            v = cfsm::wrap_to_domain(v, it->second);
          out.cycles += profile.cyc_emit_value_extra;
        }
        out.emissions.emplace_back(i.sym, v);
        ++pc;
        break;
      }
      case Opcode::kConsume:
        out.consumed = true;
        out.cycles += profile.cyc_consume;
        ++pc;
        break;
      case Opcode::kEnter:
        out.cycles += profile.cyc_enter +
                      static_cast<long long>(i.a) * profile.cyc_enter_per_copy;
        for (const auto& [from, to] : reaction.copy_in) slot(to) = slot(from);
        ++pc;
        break;
      case Opcode::kRet:
        out.cycles += profile.cyc_ret;
        for (size_t s = 0; s < mem.size(); ++s)
          out.memory_out[prog.slot_names[s]] = mem[s];
        return out;
    }
  }
  POLIS_CHECK_MSG(false, "program fell off the end without kRet");
  return out;
}

cfsm::Reaction run_reaction(const CompiledReaction& reaction,
                            const TargetProfile& profile,
                            const cfsm::Cfsm& machine,
                            const cfsm::Snapshot& snapshot,
                            const std::map<std::string, std::int64_t>& state,
                            long long* cycles_out) {
  std::map<std::string, std::int64_t> mem;
  for (const cfsm::Signal& s : machine.inputs())
    if (!s.is_pure()) mem[cfsm::value_name(s.name)] = snapshot.value_of(s.name);
  for (const auto& [name, v] : state) mem[name] = v;

  const RunResult r = run(reaction, profile, mem, [&](const std::string& sig) {
    return snapshot.is_present(sig);
  });
  if (cycles_out != nullptr) *cycles_out = r.cycles;

  cfsm::Reaction out;
  out.fired = r.consumed;
  out.emissions = r.emissions;
  out.next_state = state;
  for (auto& [name, v] : out.next_state) {
    auto it = r.memory_out.find(name);
    if (it != r.memory_out.end()) v = it->second;
  }
  return out;
}

std::optional<MeasuredTiming> measure_timing(
    const CompiledReaction& reaction, const TargetProfile& profile,
    const cfsm::Cfsm& machine, std::uint64_t limit) {
  MeasuredTiming t;
  bool first = true;
  const bool complete = cfsm::enumerate_concrete_space(
      machine, limit,
      [&](const cfsm::Snapshot& snap,
          const std::map<std::string, std::int64_t>& st) {
        long long cycles = 0;
        run_reaction(reaction, profile, machine, snap, st, &cycles);
        if (first) {
          t.min_cycles = t.max_cycles = cycles;
          first = false;
        } else {
          t.min_cycles = std::min(t.min_cycles, cycles);
          t.max_cycles = std::max(t.max_cycles, cycles);
        }
        t.cases++;
      });
  if (!complete) return std::nullopt;
  return t;
}

}  // namespace polis::vm
