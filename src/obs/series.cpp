#include "obs/series.hpp"

#include <chrono>
#include <ostream>
#include <utility>

#include "obs/json.hpp"
#include "obs/trace.hpp"
#include "util/check.hpp"

namespace polis::obs {

// --- QuantileSketch ----------------------------------------------------------

void QuantileSketch::observe(std::uint64_t value) {
  ++count_;
  sum_ += value;
  if (value < min_) min_ = value;
  if (value > max_) max_ = value;
  ++buckets_[static_cast<size_t>(MetricsRegistry::bucket_of(value))];
}

void QuantileSketch::merge(const QuantileSketch& other) {
  if (other.count_ == 0) return;
  count_ += other.count_;
  sum_ += other.sum_;
  if (other.min_ < min_) min_ = other.min_;
  if (other.max_ > max_) max_ = other.max_;
  for (int b = 0; b < MetricsRegistry::kBuckets; ++b)
    buckets_[static_cast<size_t>(b)] += other.buckets_[static_cast<size_t>(b)];
}

QuantileSketch QuantileSketch::from_histogram(
    const MetricsRegistry::HistogramView& h) {
  // Lossless: the sketch shares the registry's bucket boundaries, so the
  // transfer is a copy plus bucket-bound min/max.
  QuantileSketch s;
  s.count_ = h.count;
  s.sum_ = h.sum;
  for (int b = 0; b < MetricsRegistry::kBuckets; ++b) {
    const std::uint64_t n = h.buckets[static_cast<size_t>(b)];
    if (n == 0) continue;
    s.buckets_[static_cast<size_t>(b)] = n;
    const std::uint64_t lo = MetricsRegistry::bucket_lo(b);
    const std::uint64_t hi = MetricsRegistry::bucket_hi(b);
    if (lo < s.min_) s.min_ = lo;
    if (hi > s.max_) s.max_ = hi;
  }
  return s;
}

std::uint64_t QuantileSketch::quantile(double q) const {
  if (count_ == 0) return 0;
  if (q < 0.0) q = 0.0;
  if (q > 1.0) q = 1.0;
  // Nearest-rank: the smallest bucket whose cumulative count reaches
  // ceil(q * count), clamped into [1, count]. The epsilon keeps values like
  // 0.9 * 10 = 9.000000000000002 from ceiling to 10.
  const double target = q * static_cast<double>(count_);
  std::uint64_t rank = static_cast<std::uint64_t>(target);
  if (static_cast<double>(rank) + 1e-9 < target) ++rank;
  if (rank < 1) rank = 1;
  if (rank > count_) rank = count_;
  std::uint64_t cum = 0;
  for (int b = 0; b < MetricsRegistry::kBuckets; ++b) {
    cum += buckets_[static_cast<size_t>(b)];
    if (cum >= rank) {
      const std::uint64_t lo = MetricsRegistry::bucket_lo(b);
      const std::uint64_t hi = MetricsRegistry::bucket_hi(b);
      std::uint64_t mid = lo + (hi - lo) / 2;
      if (mid < min_) mid = min_;
      if (mid > max_) mid = max_;
      return mid;
    }
  }
  return max_;
}

// --- Epoch rendering ---------------------------------------------------------

const char* timebase_clock_name(Timebase tb) {
  switch (tb) {
    case Timebase::kWall:
      return "wall";
    case Timebase::kSim:
      return "cycles";
    case Timebase::kLayer:
      return "layer";
  }
  return "?";
}

double counter_rate(const EpochSample& prev, const EpochSample& cur,
                    const std::string& name) {
  const auto it = cur.counter_deltas.find(name);
  if (it == cur.counter_deltas.end()) return 0.0;
  const std::int64_t dt = cur.ts - prev.ts;
  if (dt <= 0) return 0.0;
  return static_cast<double>(it->second) / static_cast<double>(dt);
}

void write_epoch_jsonl(std::ostream& os, const EpochSample& sample) {
  os << "{\"epoch\":" << sample.epoch << ",\"clock\":\""
     << timebase_clock_name(sample.timebase) << "\",\"ts\":" << sample.ts
     << ",\"counters\":{";
  bool first = true;
  for (const auto& [name, delta] : sample.counter_deltas) {
    os << (first ? "" : ",") << "\"" << json::escape(name) << "\":" << delta;
    first = false;
  }
  os << "},\"gauges\":{";
  first = true;
  for (const auto& [name, value] : sample.gauges) {
    os << (first ? "" : ",") << "\"" << json::escape(name) << "\":" << value;
    first = false;
  }
  os << "},\"histograms\":{";
  first = true;
  for (const auto& [name, h] : sample.hists) {
    os << (first ? "" : ",") << "\"" << json::escape(name)
       << "\":{\"count\":" << h.count << ",\"sum\":" << h.sum
       << ",\"p50\":" << h.p50 << ",\"p90\":" << h.p90 << ",\"p99\":" << h.p99
       << "}";
    first = false;
  }
  os << "}}";
}

// --- SeriesRecorder ----------------------------------------------------------

SeriesRecorder& SeriesRecorder::global() {
  static SeriesRecorder* recorder = new SeriesRecorder();  // never destroyed
  return *recorder;
}

SeriesRecorder::~SeriesRecorder() { stop_wall_sampler(); }

void SeriesRecorder::set_capacity(std::size_t max_epochs) {
  std::lock_guard<std::mutex> lock(mu_);
  capacity_ = max_epochs == 0 ? 1 : max_epochs;
  for (auto& st : states_)
    while (st.ring.size() > capacity_) st.ring.pop_front();
}

std::size_t SeriesRecorder::capacity() const {
  std::lock_guard<std::mutex> lock(mu_);
  return capacity_;
}

void SeriesRecorder::set_sink(std::ostream* os) {
  std::lock_guard<std::mutex> lock(mu_);
  sink_ = os;
}

void SeriesRecorder::set_trace_counters(TraceRecorder* recorder) {
  std::lock_guard<std::mutex> lock(mu_);
  trace_ = recorder;
}

void SeriesRecorder::begin_series(Timebase tb,
                                  const MetricsRegistry& registry) {
  const auto snap = registry.snapshot();
  std::lock_guard<std::mutex> lock(mu_);
  TimebaseState& st = states_[static_cast<size_t>(tb)];
  st.next_epoch = 0;
  st.baselined = true;
  st.prev_counters = snap.counters;
  st.ring.clear();
}

void SeriesRecorder::tick_epoch(Timebase tb, std::int64_t ts,
                                const MetricsRegistry& registry) {
  if (!enabled()) return;
  std::lock_guard<std::mutex> lock(mu_);
  tick_locked(tb, ts, registry);
}

void SeriesRecorder::tick_locked(Timebase tb, std::int64_t ts,
                                 const MetricsRegistry& registry) {
  const auto snap = registry.snapshot();
  TimebaseState& st = states_[static_cast<size_t>(tb)];

  EpochSample sample;
  sample.timebase = tb;
  sample.epoch = st.next_epoch++;
  sample.ts = ts;
  for (const auto& [name, value] : snap.counters) {
    std::uint64_t prev = 0;
    if (st.baselined) {
      const auto it = st.prev_counters.find(name);
      if (it != st.prev_counters.end()) prev = it->second;
    }
    if (value > prev) sample.counter_deltas[name] = value - prev;
  }
  sample.gauges = snap.gauges;
  for (const auto& [name, h] : snap.histograms) {
    if (h.count == 0) continue;
    const QuantileSketch sk = QuantileSketch::from_histogram(h);
    EpochSample::HistSummary s;
    s.count = h.count;
    s.sum = h.sum;
    s.p50 = sk.quantile(0.5);
    s.p90 = sk.quantile(0.9);
    s.p99 = sk.quantile(0.99);
    sample.hists[name] = s;
  }
  st.prev_counters = snap.counters;
  st.baselined = true;
  ++st.total;

  if (sink_ != nullptr) {
    write_epoch_jsonl(*sink_, sample);
    *sink_ << '\n';
    sink_->flush();  // abort-killed runs still yield every completed epoch
  }
  if (trace_ != nullptr && trace_->enabled()) {
    const int pid = tb == Timebase::kSim ? kPidSim : kPidPipeline;
    for (const auto& [name, delta] : sample.counter_deltas) {
      TraceEvent e;
      e.name = name;
      e.cat = "series";
      e.ph = 'C';
      e.ts = ts;
      e.pid = pid;
      e.tid = 0;
      e.args.push_back({"value", std::to_string(delta)});
      trace_->record(std::move(e));
    }
  }

  st.ring.push_back(std::move(sample));
  while (st.ring.size() > capacity_) st.ring.pop_front();
}

std::vector<EpochSample> SeriesRecorder::samples(Timebase tb) const {
  std::lock_guard<std::mutex> lock(mu_);
  const TimebaseState& st = states_[static_cast<size_t>(tb)];
  return std::vector<EpochSample>(st.ring.begin(), st.ring.end());
}

std::uint64_t SeriesRecorder::total_epochs(Timebase tb) const {
  std::lock_guard<std::mutex> lock(mu_);
  return states_[static_cast<size_t>(tb)].total;
}

void SeriesRecorder::start_wall_sampler(std::int64_t interval_ms,
                                        const MetricsRegistry& registry) {
  POLIS_CHECK(interval_ms > 0);
  stop_wall_sampler();
  begin_series(Timebase::kWall, registry);
  {
    std::lock_guard<std::mutex> lock(sampler_mu_);
    sampler_stop_ = false;
  }
  const MetricsRegistry* reg = &registry;
  sampler_ = std::thread([this, interval_ms, reg] {
    std::unique_lock<std::mutex> lock(sampler_mu_);
    for (;;) {
      sampler_cv_.wait_for(lock, std::chrono::milliseconds(interval_ms),
                           [this] { return sampler_stop_; });
      if (sampler_stop_) return;
      lock.unlock();
      tick_epoch(Timebase::kWall, now_us(), *reg);
      lock.lock();
    }
  });
}

void SeriesRecorder::stop_wall_sampler() {
  {
    std::lock_guard<std::mutex> lock(sampler_mu_);
    sampler_stop_ = true;
  }
  sampler_cv_.notify_all();
  if (sampler_.joinable()) sampler_.join();
}

}  // namespace polis::obs
