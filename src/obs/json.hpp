// Minimal strict JSON reader + string escaping, shared by the observability
// exporters, the `obs_check` validation tool and the tests. This is a
// validator-grade parser (everything the exporters emit, nothing more
// lenient): UTF-8 pass-through, \uXXXX decoded to UTF-8, numbers via strtod.
#pragma once

#include <cstddef>
#include <stdexcept>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace polis::obs::json {

struct Value {
  enum class Kind { kNull, kBool, kNumber, kString, kArray, kObject };
  Kind kind = Kind::kNull;
  bool boolean = false;
  double number = 0;
  std::string str;
  std::vector<Value> array;
  /// Members in document order (duplicate keys preserved).
  std::vector<std::pair<std::string, Value>> object;

  bool is_null() const { return kind == Kind::kNull; }
  bool is_bool() const { return kind == Kind::kBool; }
  bool is_number() const { return kind == Kind::kNumber; }
  bool is_string() const { return kind == Kind::kString; }
  bool is_array() const { return kind == Kind::kArray; }
  bool is_object() const { return kind == Kind::kObject; }

  /// First member with `key`, or nullptr (requires an object).
  const Value* find(std::string_view key) const;
};

/// Thrown on malformed input, with a byte offset in the message.
class ParseError : public std::runtime_error {
 public:
  ParseError(const std::string& what, size_t offset)
      : std::runtime_error(what + " at byte " + std::to_string(offset)),
        offset_(offset) {}
  size_t offset() const { return offset_; }

 private:
  size_t offset_;
};

/// Parses exactly one JSON document (trailing garbage is an error).
Value parse(std::string_view text);

/// Escapes `s` for embedding inside a JSON string literal (no quotes added).
std::string escape(const std::string& s);

}  // namespace polis::obs::json
