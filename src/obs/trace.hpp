// Span-based tracing with Chrome trace-event export (loadable in Perfetto or
// chrome://tracing).
//
// Two timebases share one file, kept apart by Chrome "process" ids:
//   * pid kPidPipeline — wall-clock lanes (microseconds since process start),
//     one lane per OS thread: the synthesis pipeline, the thread-pool
//     workers, the verif fixpoint;
//   * pid kPidSim — simulated-cycle lanes, one per RTOS task: the simulator's
//     event log replayed onto the *same* clock as the VCD export (one trace
//     tick == one VCD timescale unit == one simulated cycle).
//
// Overhead contract: when the recorder is disabled (the default), a `Span` is
// one relaxed atomic load and a branch — no clock read, no allocation, no
// string copy. Argument values are only materialised behind `Span::armed()`.
// Spans shorter than `min_span_us` are dropped at destruction (coarse
// duration sampling for hot call sites). Compiling with POLIS_OBS_DISABLED
// turns the OBS_SPAN macros into nothing at all.
#pragma once

#include <atomic>
#include <cstdint>
#include <iosfwd>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <type_traits>
#include <vector>

namespace polis::obs {

/// Monotonic microseconds since the first call in this process (the trace
/// epoch shared by every wall-clock lane).
std::int64_t now_us();

constexpr int kPidPipeline = 1;
constexpr int kPidSim = 2;

/// Stable small id of the calling OS thread (1 = first thread seen).
std::uint32_t this_thread_id();

struct TraceArg {
  std::string key;
  /// Pre-rendered JSON: quoted+escaped for strings, bare for numbers.
  std::string value;
};

struct TraceEvent {
  std::string name;
  const char* cat = "";
  char ph = 'X';  // 'X' complete, 'i' instant, 'M' metadata, 'C' counter
  std::int64_t ts = 0;
  std::int64_t dur = 0;  // 'X' only
  int pid = kPidPipeline;
  std::uint32_t tid = 0;
  std::vector<TraceArg> args;
};

class TraceRecorder {
 public:
  /// The process-wide recorder the OBS_SPAN macros target.
  static TraceRecorder& global();

  TraceRecorder() = default;
  TraceRecorder(const TraceRecorder&) = delete;
  TraceRecorder& operator=(const TraceRecorder&) = delete;

  void set_enabled(bool on) {
    enabled_.store(on, std::memory_order_relaxed);
  }
  bool enabled() const { return enabled_.load(std::memory_order_relaxed); }

  /// Spans shorter than this are dropped at destruction (0 keeps all).
  void set_min_span_us(std::int64_t us) {
    min_span_us_.store(us, std::memory_order_relaxed);
  }
  std::int64_t min_span_us() const {
    return min_span_us_.load(std::memory_order_relaxed);
  }

  /// Appends to the calling thread's buffer; a no-op while disabled.
  void record(TraceEvent event);

  /// Names the calling thread's wall-clock lane (sticky; emitted as Chrome
  /// 'thread_name' metadata at export time, independent of enablement).
  void name_this_thread(const std::string& name);
  /// Names a simulated lane (pid kPidSim).
  void name_sim_lane(std::uint32_t tid, const std::string& name);

  /// Drops all buffered events (lane names survive).
  void clear();

  /// All buffered events plus naming metadata, sorted by (pid, ts).
  std::vector<TraceEvent> collect() const;

  /// { "traceEvents": [...], "displayTimeUnit": "ms" }
  void write_chrome_json(std::ostream& os) const;

  /// Total duration (milliseconds) of buffered 'X' spans, by name — the
  /// per-phase wall-time breakdown exported into metrics snapshots and
  /// BENCH_*.json reports. Nested spans each contribute their full duration.
  std::map<std::string, double> span_totals_ms(int pid = kPidPipeline) const;

 private:
  struct Buffer {
    std::mutex mu;
    std::vector<TraceEvent> events;
  };
  Buffer& local_buffer();

  std::atomic<bool> enabled_{false};
  std::atomic<std::int64_t> min_span_us_{0};
  mutable std::mutex mu_;
  std::vector<std::shared_ptr<Buffer>> buffers_;
  std::map<std::pair<int, std::uint32_t>, std::string> lane_names_;
  const std::uint64_t uid_ = next_uid_.fetch_add(1);
  static std::atomic<std::uint64_t> next_uid_;
};

/// RAII span on the calling thread's wall-clock lane. Construction arms the
/// span only if the recorder is enabled; `arg` calls on an unarmed span are
/// free. Destruction records a complete ('X') event unless the duration is
/// under the recorder's span floor.
class Span {
 public:
  explicit Span(const char* name, const char* cat = "pipeline")
      : Span(TraceRecorder::global(), name, cat) {}
  Span(std::string name, const char* cat = "pipeline")
      : Span(TraceRecorder::global(), std::move(name), cat) {}
  Span(TraceRecorder& recorder, const char* name,
       const char* cat = "pipeline");
  Span(TraceRecorder& recorder, std::string name,
       const char* cat = "pipeline");
  ~Span();

  Span(const Span&) = delete;
  Span& operator=(const Span&) = delete;

  /// True when the recorder was enabled at construction: guard any argument
  /// computation that is not free behind this.
  bool armed() const { return recorder_ != nullptr; }

  void arg(const char* key, std::int64_t value);
  void arg(const char* key, std::uint64_t value);
  template <typename T,
            typename = std::enable_if_t<std::is_integral_v<T> &&
                                        !std::is_same_v<T, std::int64_t> &&
                                        !std::is_same_v<T, std::uint64_t> &&
                                        !std::is_same_v<T, bool>>>
  void arg(const char* key, T value) {
    if constexpr (std::is_signed_v<T>)
      arg(key, static_cast<std::int64_t>(value));
    else
      arg(key, static_cast<std::uint64_t>(value));
  }
  void arg(const char* key, double value);
  void arg(const char* key, bool value);
  void arg(const char* key, const std::string& value);
  void arg(const char* key, const char* value);

 private:
  TraceRecorder* recorder_ = nullptr;  // null = unarmed
  std::int64_t start_ = 0;
  TraceEvent event_;
};

/// Does nothing; what OBS_SPAN declares when POLIS_OBS_DISABLED is set.
struct NullSpan {
  template <typename... Args>
  explicit NullSpan(Args&&...) {}
  static constexpr bool armed() { return false; }
  template <typename K, typename V>
  void arg(K&&, V&&) {}
};

/// Records an instant event on the calling thread's wall-clock lane.
void trace_instant(std::string name, const char* cat = "pipeline");

/// Records a complete event with an explicit timebase — how the RTOS
/// simulator's log lands on the simulated-cycle lanes (pid kPidSim).
void trace_complete_at(int pid, std::uint32_t tid, std::string name,
                       const char* cat, std::int64_t ts, std::int64_t dur,
                       std::vector<TraceArg> args = {});

/// Instant sibling of `trace_complete_at`.
void trace_instant_at(int pid, std::uint32_t tid, std::string name,
                      const char* cat, std::int64_t ts,
                      std::vector<TraceArg> args = {});

}  // namespace polis::obs

// OBS_SPAN(var, "name"[, "category"]) declares a named RAII span `var` in the
// current scope; call `var.arg(...)` (guarded by `var.armed()` when the value
// is not free to compute) to attach arguments.
#ifdef POLIS_OBS_DISABLED
#define OBS_SPAN(var, ...) ::polis::obs::NullSpan var
#else
#define OBS_SPAN(var, ...) ::polis::obs::Span var { __VA_ARGS__ }
#endif
