// Umbrella header for the observability layer: metrics registry + span
// tracing + the combined `--metrics` snapshot exporter. See metrics.hpp and
// trace.hpp for the two halves; DESIGN.md §9 for the architecture and the
// overhead methodology.
#pragma once

#include <iosfwd>

#include "obs/metrics.hpp"
#include "obs/trace.hpp"

namespace polis::obs {

/// Combined machine-readable snapshot, the payload behind `polisc
/// --metrics`: the registry's counters/gauges/histograms, per-histogram
/// quantile summaries (p50/p90/p99 through QuantileSketch), plus a per-phase
/// wall-time breakdown aggregated from the recorder's spans.
///   { "counters": .., "gauges": .., "histograms": .., "derived": ..,
///     "quantiles": { "hist": {"count","sum","p50","p90","p99"}, ... },
///     "phases": { "span name": milliseconds, ... } }
void write_metrics_json(
    std::ostream& os,
    const MetricsRegistry& registry = MetricsRegistry::global(),
    const TraceRecorder* recorder = &TraceRecorder::global());

}  // namespace polis::obs
