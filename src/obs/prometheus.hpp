// Prometheus text exposition (version 0.0.4) of a registry snapshot — the
// body a future `polisd /metrics` endpoint serves, and what the CI line
// validator checks. Counters gain the conventional `_total` suffix,
// histograms export as summaries (p50/p90/p99 through QuantileSketch plus
// exact `_sum`/`_count`), and metric names are sanitised into the Prometheus
// alphabet with a `polis_` prefix ("bdd.ite_calls" → "polis_bdd_ite_calls").
#pragma once

#include <iosfwd>
#include <string>

#include "obs/metrics.hpp"

namespace polis::obs {

/// "bdd.cache_hit_rate" → "polis_bdd_cache_hit_rate"; any character outside
/// [a-zA-Z0-9_:] becomes '_'.
std::string prometheus_name(const std::string& name);

void write_prometheus(std::ostream& os,
                      const MetricsRegistry& registry =
                          MetricsRegistry::global());

}  // namespace polis::obs
