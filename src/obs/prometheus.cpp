#include "obs/prometheus.hpp"

#include <ostream>

#include "obs/series.hpp"

namespace polis::obs {

std::string prometheus_name(const std::string& name) {
  std::string out = "polis_";
  out.reserve(out.size() + name.size());
  for (const char c : name) {
    const bool ok = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                    (c >= '0' && c <= '9') || c == '_' || c == ':';
    out.push_back(ok ? c : '_');
  }
  return out;
}

void write_prometheus(std::ostream& os, const MetricsRegistry& registry) {
  const MetricsRegistry::Snapshot snap = registry.snapshot();
  for (const auto& [name, value] : snap.counters) {
    const std::string p = prometheus_name(name) + "_total";
    os << "# TYPE " << p << " counter\n" << p << " " << value << "\n";
  }
  for (const auto& [name, value] : snap.gauges) {
    const std::string p = prometheus_name(name);
    os << "# TYPE " << p << " gauge\n" << p << " " << value << "\n";
  }
  for (const auto& [name, h] : snap.histograms) {
    if (h.count == 0) continue;
    const std::string p = prometheus_name(name);
    const QuantileSketch sk = QuantileSketch::from_histogram(h);
    os << "# TYPE " << p << " summary\n";
    os << p << "{quantile=\"0.5\"} " << sk.quantile(0.5) << "\n";
    os << p << "{quantile=\"0.9\"} " << sk.quantile(0.9) << "\n";
    os << p << "{quantile=\"0.99\"} " << sk.quantile(0.99) << "\n";
    os << p << "_sum " << h.sum << "\n";
    os << p << "_count " << h.count << "\n";
  }
}

}  // namespace polis::obs
