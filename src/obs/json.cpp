#include "obs/json.hpp"

#include <cstdio>
#include <cstdlib>

namespace polis::obs::json {

const Value* Value::find(std::string_view key) const {
  if (kind != Kind::kObject) return nullptr;
  for (const auto& [k, v] : object)
    if (k == key) return &v;
  return nullptr;
}

namespace {

class Parser {
 public:
  explicit Parser(std::string_view text) : text_(text) {}

  Value parse_document() {
    Value v = parse_value();
    skip_ws();
    if (pos_ != text_.size()) fail("trailing characters");
    return v;
  }

 private:
  [[noreturn]] void fail(const std::string& what) const {
    throw ParseError(what, pos_);
  }

  char peek() {
    if (pos_ >= text_.size()) fail("unexpected end of input");
    return text_[pos_];
  }

  char next() {
    const char c = peek();
    ++pos_;
    return c;
  }

  void expect(char c) {
    if (next() != c) {
      --pos_;
      fail(std::string("expected '") + c + "'");
    }
  }

  void skip_ws() {
    while (pos_ < text_.size()) {
      const char c = text_[pos_];
      if (c != ' ' && c != '\t' && c != '\n' && c != '\r') break;
      ++pos_;
    }
  }

  bool consume_literal(std::string_view word) {
    if (text_.substr(pos_, word.size()) != word) return false;
    pos_ += word.size();
    return true;
  }

  Value parse_value() {
    skip_ws();
    const char c = peek();
    switch (c) {
      case '{': return parse_object();
      case '[': return parse_array();
      case '"': {
        Value v;
        v.kind = Value::Kind::kString;
        v.str = parse_string();
        return v;
      }
      case 't':
      case 'f': {
        Value v;
        v.kind = Value::Kind::kBool;
        v.boolean = c == 't';
        if (!consume_literal(c == 't' ? "true" : "false"))
          fail("bad literal");
        return v;
      }
      case 'n': {
        if (!consume_literal("null")) fail("bad literal");
        return Value{};
      }
      default: return parse_number();
    }
  }

  Value parse_object() {
    expect('{');
    Value v;
    v.kind = Value::Kind::kObject;
    skip_ws();
    if (peek() == '}') {
      ++pos_;
      return v;
    }
    while (true) {
      skip_ws();
      std::string key = parse_string();
      skip_ws();
      expect(':');
      v.object.emplace_back(std::move(key), parse_value());
      skip_ws();
      const char c = next();
      if (c == '}') return v;
      if (c != ',') {
        --pos_;
        fail("expected ',' or '}'");
      }
    }
  }

  Value parse_array() {
    expect('[');
    Value v;
    v.kind = Value::Kind::kArray;
    skip_ws();
    if (peek() == ']') {
      ++pos_;
      return v;
    }
    while (true) {
      v.array.push_back(parse_value());
      skip_ws();
      const char c = next();
      if (c == ']') return v;
      if (c != ',') {
        --pos_;
        fail("expected ',' or ']'");
      }
    }
  }

  Value parse_number() {
    const size_t start = pos_;
    if (pos_ < text_.size() && text_[pos_] == '-') ++pos_;
    auto digits = [&] {
      const size_t before = pos_;
      while (pos_ < text_.size() && text_[pos_] >= '0' && text_[pos_] <= '9')
        ++pos_;
      if (pos_ == before) fail("expected digits");
    };
    digits();
    if (pos_ < text_.size() && text_[pos_] == '.') {
      ++pos_;
      digits();
    }
    if (pos_ < text_.size() && (text_[pos_] == 'e' || text_[pos_] == 'E')) {
      ++pos_;
      if (pos_ < text_.size() && (text_[pos_] == '+' || text_[pos_] == '-'))
        ++pos_;
      digits();
    }
    Value v;
    v.kind = Value::Kind::kNumber;
    v.number = std::strtod(std::string(text_.substr(start, pos_ - start)).c_str(),
                           nullptr);
    return v;
  }

  std::string parse_string() {
    expect('"');
    std::string out;
    while (true) {
      const char c = next();
      if (c == '"') return out;
      if (static_cast<unsigned char>(c) < 0x20)
        fail("unescaped control character in string");
      if (c != '\\') {
        out.push_back(c);
        continue;
      }
      const char esc = next();
      switch (esc) {
        case '"': out.push_back('"'); break;
        case '\\': out.push_back('\\'); break;
        case '/': out.push_back('/'); break;
        case 'b': out.push_back('\b'); break;
        case 'f': out.push_back('\f'); break;
        case 'n': out.push_back('\n'); break;
        case 'r': out.push_back('\r'); break;
        case 't': out.push_back('\t'); break;
        case 'u': {
          unsigned code = 0;
          for (int i = 0; i < 4; ++i) {
            const char h = next();
            code <<= 4;
            if (h >= '0' && h <= '9') code |= static_cast<unsigned>(h - '0');
            else if (h >= 'a' && h <= 'f')
              code |= static_cast<unsigned>(h - 'a' + 10);
            else if (h >= 'A' && h <= 'F')
              code |= static_cast<unsigned>(h - 'A' + 10);
            else {
              --pos_;
              fail("bad \\u escape");
            }
          }
          // BMP code point to UTF-8 (unpaired surrogates pass through).
          if (code < 0x80) {
            out.push_back(static_cast<char>(code));
          } else if (code < 0x800) {
            out.push_back(static_cast<char>(0xc0 | (code >> 6)));
            out.push_back(static_cast<char>(0x80 | (code & 0x3f)));
          } else {
            out.push_back(static_cast<char>(0xe0 | (code >> 12)));
            out.push_back(static_cast<char>(0x80 | ((code >> 6) & 0x3f)));
            out.push_back(static_cast<char>(0x80 | (code & 0x3f)));
          }
          break;
        }
        default: {
          --pos_;
          fail("bad escape");
        }
      }
    }
  }

  std::string_view text_;
  size_t pos_ = 0;
};

}  // namespace

Value parse(std::string_view text) { return Parser(text).parse_document(); }

std::string escape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

}  // namespace polis::obs::json
