// Streaming telemetry: epoch sampling of registry snapshots into a bounded
// ring of deltas, plus the fixed-size mergeable quantile sketch that fleet
// aggregation merges across instances.
//
// Timebases. A series is a sequence of epochs on one of three clocks:
//   * kWall  — wall microseconds since the trace epoch, driven by the
//     background sampler thread (`--metrics-interval-ms`);
//   * kSim   — simulated cycles, ticked by the RTOS simulator loop at
//     `RtosConfig::metrics_epoch_cycles` boundaries;
//   * kLayer — BFS depth, ticked once per verif fixpoint layer.
// Sim and layer epochs are driven entirely by deterministic integer state, so
// their JSONL lines are byte-identical across identical runs: every rendered
// field (epoch index, timestamp, counter deltas, gauges, sketch quantiles) is
// integral, and the wall sampler only *reads* the registry. The one caveat:
// wall-dependent gauges (governor deadline headroom_ms) do vary, so runs
// under a --budget-ms deadline trade sim-line identity for liveness data.
//
// Memory bound. The ring holds at most `capacity()` EpochSample values per
// timebase (default 4096); each sample stores only nonzero counter deltas,
// current gauges, and a five-number summary per histogram — never full bucket
// arrays — so a million ticks stay within capacity * O(metrics) bytes.
//
// Concurrency. `tick_epoch` serialises samplers under one mutex and is a
// single relaxed load when the recorder is disabled; registry writers stay on
// their lock-free shard path, so ticking from a sampler thread races hot-path
// `add`/`observe` calls cleanly (TSan-checked in series_test).
#pragma once

#include <array>
#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <iosfwd>
#include <map>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "obs/metrics.hpp"

namespace polis::obs {

class TraceRecorder;

/// Fixed-size mergeable quantile sketch over the registry's log-linear bucket
/// geometry. Merge is elementwise addition — associative and commutative —
/// and `from_histogram` is lossless because the sketch shares
/// MetricsRegistry's bucket boundaries. Quantiles are nearest-rank over the
/// cumulative bucket counts, reported as the bucket midpoint clamped to the
/// observed [min, max], so relative error is bounded by the bucket geometry
/// (~6%, exact below 16).
class QuantileSketch {
 public:
  void observe(std::uint64_t value);
  void merge(const QuantileSketch& other);
  static QuantileSketch from_histogram(const MetricsRegistry::HistogramView& h);

  std::uint64_t count() const { return count_; }
  std::uint64_t sum() const { return sum_; }
  /// Smallest/largest observation (bucket lower/upper bound when built via
  /// `from_histogram`); both 0 when the sketch is empty.
  std::uint64_t min() const { return count_ == 0 ? 0 : min_; }
  std::uint64_t max() const { return max_; }

  /// Nearest-rank quantile, q in [0, 1]; deterministic integer result.
  std::uint64_t quantile(double q) const;

 private:
  std::uint64_t count_ = 0;
  std::uint64_t sum_ = 0;
  std::uint64_t min_ = ~std::uint64_t{0};
  std::uint64_t max_ = 0;
  std::array<std::uint64_t, MetricsRegistry::kBuckets> buckets_{};
};

enum class Timebase : int { kWall = 0, kSim = 1, kLayer = 2 };
constexpr int kNumTimebases = 3;
/// JSONL "clock" field: "wall" / "cycles" / "layer".
const char* timebase_clock_name(Timebase tb);

/// One epoch: counter *deltas* since the previous epoch on the same timebase,
/// current gauges, and cumulative five-number histogram summaries.
struct EpochSample {
  Timebase timebase = Timebase::kWall;
  std::uint64_t epoch = 0;  // per-timebase index, 0-based from the baseline
  std::int64_t ts = 0;      // wall us / sim cycle / layer depth
  std::map<std::string, std::uint64_t> counter_deltas;  // nonzero only
  std::map<std::string, std::int64_t> gauges;
  struct HistSummary {
    std::uint64_t count = 0;  // cumulative, like the registry's histograms
    std::uint64_t sum = 0;
    std::uint64_t p50 = 0;
    std::uint64_t p90 = 0;
    std::uint64_t p99 = 0;
  };
  std::map<std::string, HistSummary> hists;  // count > 0 only
};

/// Counter rate between two consecutive samples of one series, in units of
/// the series' clock (per microsecond / per cycle / per layer).
double counter_rate(const EpochSample& prev, const EpochSample& cur,
                    const std::string& name);

/// Renders one epoch as a single JSON line (no trailing newline). Integral
/// fields only — the byte-identity contract for sim/layer series.
void write_epoch_jsonl(std::ostream& os, const EpochSample& sample);

class SeriesRecorder {
 public:
  /// The process-wide recorder OBS_TICK_EPOCH targets.
  static SeriesRecorder& global();

  SeriesRecorder() = default;
  SeriesRecorder(const SeriesRecorder&) = delete;
  SeriesRecorder& operator=(const SeriesRecorder&) = delete;
  ~SeriesRecorder();

  void set_enabled(bool on) { enabled_.store(on, std::memory_order_relaxed); }
  bool enabled() const { return enabled_.load(std::memory_order_relaxed); }

  /// Ring bound per timebase; older epochs are evicted (they were already
  /// streamed to the sink, if any).
  void set_capacity(std::size_t max_epochs);
  std::size_t capacity() const;

  /// Streaming JSONL sink, one epoch per line, flushed per line so an
  /// abort-killed run still yields the series (not owned; null to detach).
  void set_sink(std::ostream* os);

  /// When set (and the trace recorder is enabled), every tick also emits
  /// Chrome counter ('C') events so rates render beside spans (not owned).
  void set_trace_counters(TraceRecorder* recorder);

  /// Re-baselines a timebase: captures the registry's current snapshot as
  /// epoch -1 and resets the epoch index, so the first subsequent tick
  /// reports deltas relative to *now*. The RTOS simulator calls this at run
  /// start, which is what makes two identical runs' sim series byte-equal
  /// even when earlier pipeline work differed in wall time.
  void begin_series(Timebase tb, const MetricsRegistry& registry =
                                     MetricsRegistry::global());

  /// Captures one epoch: snapshots the registry, diffs counters against the
  /// previous epoch on `tb`, summarises histograms through QuantileSketch,
  /// appends to the ring, and streams to the sink. A relaxed-load no-op when
  /// disabled. Without a prior begin_series the baseline is the empty
  /// snapshot (deltas equal cumulative values).
  void tick_epoch(Timebase tb, std::int64_t ts,
                  const MetricsRegistry& registry = MetricsRegistry::global());

  /// Copy of the ring for one timebase, oldest first.
  std::vector<EpochSample> samples(Timebase tb) const;
  /// Epochs ever ticked on `tb` (monotonic; unaffected by ring eviction).
  std::uint64_t total_epochs(Timebase tb) const;

  /// Background wall-clock sampler: ticks kWall every `interval_ms`.
  /// Idempotent stop; the destructor also stops it.
  void start_wall_sampler(std::int64_t interval_ms,
                          const MetricsRegistry& registry =
                              MetricsRegistry::global());
  void stop_wall_sampler();

 private:
  struct TimebaseState {
    std::uint64_t next_epoch = 0;
    std::uint64_t total = 0;
    bool baselined = false;
    std::map<std::string, std::uint64_t> prev_counters;
    std::deque<EpochSample> ring;
  };

  void tick_locked(Timebase tb, std::int64_t ts,
                   const MetricsRegistry& registry);

  std::atomic<bool> enabled_{false};
  mutable std::mutex mu_;
  std::size_t capacity_ = 4096;
  std::ostream* sink_ = nullptr;
  TraceRecorder* trace_ = nullptr;
  std::array<TimebaseState, kNumTimebases> states_;

  std::mutex sampler_mu_;
  std::condition_variable sampler_cv_;
  bool sampler_stop_ = false;
  std::thread sampler_;
};

}  // namespace polis::obs

// OBS_TICK_EPOCH(timebase, ts) captures one epoch on the global recorder; a
// single relaxed load when series recording is off, nothing at all under
// POLIS_OBS_DISABLED.
#ifdef POLIS_OBS_DISABLED
#define OBS_TICK_EPOCH(tb, ts) \
  do {                         \
  } while (0)
#else
#define OBS_TICK_EPOCH(tb, ts) \
  ::polis::obs::SeriesRecorder::global().tick_epoch((tb), (ts))
#endif
