// Metrics registry: named counters, gauges and log-linear-bucket histograms
// with a lock-free fast path. Updates go to a per-thread shard (preallocated
// arrays of relaxed atomics — no lock, no allocation, no hash lookup once an
// Id is held); `snapshot` merges the shards under the registry mutex. The
// layer the pipeline's ad-hoc telemetry structs (`BddManager::stats`,
// SiftTelemetry, ReachStats, rtos::SimStats) mirror into, so one `--metrics`
// snapshot covers the whole flow.
//
// Concurrency model: registration (name → Id) takes a mutex and is expected
// at setup time or at coarse flush points; `add`/`set`/`observe` are safe
// from any thread concurrently with `snapshot`. Counts are monotonic and read
// with relaxed ordering — a snapshot taken mid-update is a valid (slightly
// stale) prefix, never torn.
#pragma once

#include <array>
#include <atomic>
#include <cstdint>
#include <iosfwd>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

namespace polis::obs {

class MetricsRegistry {
 public:
  using Id = std::uint32_t;
  static constexpr Id kInvalidId = 0xffffffffu;

  /// Histogram buckets are log-linear (HdrHistogram-style): each power-of-two
  /// octave is split into 2^kSubBits linear sub-buckets, so values 0..15 land
  /// in their own exact bucket and every wider bucket spans at most a
  /// 1/(2*2^kSubBits) = ~6% relative error around its midpoint — tight enough
  /// that p50/p90/p99 read off the buckets are honest. Bucket b < 16 holds
  /// exactly the value b; bucket b >= 16 with octave o = b >> kSubBits and
  /// sub-index m = b & 7 holds [(8+m) << (o-1), ((9+m) << (o-1)) - 1]. The
  /// last bucket's upper bound is UINT64_MAX.
  static constexpr int kSubBits = 3;
  // Highest bucket index is ((64 - kSubBits) << kSubBits) | (2^kSubBits - 1).
  static constexpr int kBuckets = (64 - kSubBits + 1) * (1 << kSubBits);  // 496

  // Per-shard capacity; registering more of a kind is a CheckError. Sized so
  // a shard stays ~130 KiB (histogram bucket arrays dominate) — still cheap
  // enough to preallocate per thread.
  static constexpr std::uint32_t kMaxCounters = 256;
  static constexpr std::uint32_t kMaxGauges = 64;
  static constexpr std::uint32_t kMaxHistograms = 32;

  /// The process-wide registry every instrumented subsystem reports to.
  static MetricsRegistry& global();

  MetricsRegistry() = default;
  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

  // --- Registration (idempotent by name) ------------------------------------

  Id counter(const std::string& name);
  /// Last-write-wins gauge (writes are sequenced across threads).
  Id gauge(const std::string& name);
  /// Gauge merged by maximum across all writes (e.g. peak node counts).
  Id max_gauge(const std::string& name);
  Id histogram(const std::string& name);

  // --- Updates (lock-free; Id kind must match the registration) -------------

  void add(Id id, std::uint64_t delta = 1);
  void set(Id id, std::int64_t value);
  void observe(Id id, std::uint64_t value);

  // --- Snapshot / export ----------------------------------------------------

  struct HistogramView {
    std::uint64_t count = 0;
    std::uint64_t sum = 0;
    std::array<std::uint64_t, kBuckets> buckets{};
  };
  struct Snapshot {
    std::map<std::string, std::uint64_t> counters;
    std::map<std::string, std::int64_t> gauges;
    std::map<std::string, HistogramView> histograms;
  };
  Snapshot snapshot() const;

  /// Zeroes every metric in every shard (names and Ids stay registered).
  void reset();

  /// Machine-readable snapshot:
  ///   { "counters": {..}, "gauges": {..},
  ///     "histograms": { name: {"count","sum","buckets":[[lo,hi,n],..]} },
  ///     "derived": { "bdd.cache_hit_rate": .., "<hist>_avg": .. } }
  /// Histogram bucket triples list only non-empty buckets. Derived
  /// `<hist>_avg` values divide the *exact* merged per-shard sums by the
  /// merged counts — never bucket midpoints, which would skew the mean by up
  /// to the bucket's relative error.
  void write_json(std::ostream& os) const;

  static int bucket_of(std::uint64_t value);
  static std::uint64_t bucket_lo(int bucket);
  /// Inclusive upper bound; the last bucket returns UINT64_MAX.
  static std::uint64_t bucket_hi(int bucket);

 private:
  enum class Kind : std::uint32_t {
    kCounter = 0,
    kGauge = 1,
    kMaxGauge = 2,
    kHistogram = 3
  };
  static constexpr std::uint32_t kKindShift = 28;
  static Kind kind_of(Id id) { return static_cast<Kind>(id >> kKindShift); }
  static std::uint32_t index_of(Id id) {
    return id & ((1u << kKindShift) - 1);
  }
  static Id make_id(Kind k, std::uint32_t index) {
    return (static_cast<std::uint32_t>(k) << kKindShift) | index;
  }

  struct GaugeCell {
    std::atomic<std::uint64_t> seq{0};  // 0 = never written
    std::atomic<std::int64_t> value{0};
  };
  struct HistogramCells {
    std::atomic<std::uint64_t> count{0};
    std::atomic<std::uint64_t> sum{0};
    std::array<std::atomic<std::uint64_t>, kBuckets> buckets{};
  };
  struct Shard {
    std::array<std::atomic<std::uint64_t>, kMaxCounters> counters{};
    std::array<GaugeCell, kMaxGauges> gauges{};
    std::array<HistogramCells, kMaxHistograms> histograms{};
  };

  Shard& local_shard();
  Id register_named(Kind kind, const std::string& name);

  mutable std::mutex mu_;
  // Name → Id per kind (gauge and max_gauge share the gauge index space).
  std::map<std::string, Id> names_;
  std::uint32_t num_counters_ = 0;
  std::uint32_t num_gauges_ = 0;
  std::uint32_t num_histograms_ = 0;
  std::vector<std::shared_ptr<Shard>> shards_;
  // Distinguishes registries that reuse a freed address (thread-local shard
  // maps are keyed by this, not by pointer).
  const std::uint64_t uid_ = next_uid_.fetch_add(1);
  std::atomic<std::uint64_t> gauge_seq_{0};
  static std::atomic<std::uint64_t> next_uid_;
};

}  // namespace polis::obs
