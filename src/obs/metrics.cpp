#include "obs/metrics.hpp"

#include <bit>
#include <ostream>

#include "obs/json.hpp"
#include "util/check.hpp"

namespace polis::obs {

std::atomic<std::uint64_t> MetricsRegistry::next_uid_{1};

MetricsRegistry& MetricsRegistry::global() {
  static MetricsRegistry* registry = new MetricsRegistry();  // never destroyed
  return *registry;
}

int MetricsRegistry::bucket_of(std::uint64_t value) {
  // Log-linear: the top kSubBits+1 significant bits select the bucket, so
  // every octave splits into 2^kSubBits equal-width sub-buckets and values
  // below 2^(kSubBits+1) are exact.
  if (value < (1u << (kSubBits + 1))) return static_cast<int>(value);
  const int width = std::bit_width(value);  // kSubBits+2 .. 64
  const int sub = static_cast<int>((value >> (width - kSubBits - 1)) &
                                   ((1u << kSubBits) - 1));
  return ((width - kSubBits) << kSubBits) + sub;
}

std::uint64_t MetricsRegistry::bucket_lo(int bucket) {
  POLIS_CHECK(bucket >= 0 && bucket < kBuckets);
  if (bucket < (1 << (kSubBits + 1))) return static_cast<std::uint64_t>(bucket);
  const int octave = bucket >> kSubBits;          // 2 .. 64-kSubBits
  const int sub = bucket & ((1 << kSubBits) - 1);  // 0 .. 2^kSubBits-1
  return (std::uint64_t{1 << kSubBits} + static_cast<std::uint64_t>(sub))
         << (octave - 1);
}

std::uint64_t MetricsRegistry::bucket_hi(int bucket) {
  POLIS_CHECK(bucket >= 0 && bucket < kBuckets);
  if (bucket == kBuckets - 1) return ~std::uint64_t{0};
  return bucket_lo(bucket + 1) - 1;
}

MetricsRegistry::Id MetricsRegistry::register_named(Kind kind,
                                                    const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = names_.find(name);
  if (it != names_.end()) {
    POLIS_CHECK_MSG(kind_of(it->second) == kind,
                    "metric '" << name << "' re-registered with another kind");
    return it->second;
  }
  std::uint32_t index = 0;
  switch (kind) {
    case Kind::kCounter:
      POLIS_CHECK_MSG(num_counters_ < kMaxCounters, "too many counters");
      index = num_counters_++;
      break;
    case Kind::kGauge:
    case Kind::kMaxGauge:
      POLIS_CHECK_MSG(num_gauges_ < kMaxGauges, "too many gauges");
      index = num_gauges_++;
      break;
    case Kind::kHistogram:
      POLIS_CHECK_MSG(num_histograms_ < kMaxHistograms, "too many histograms");
      index = num_histograms_++;
      break;
  }
  const Id id = make_id(kind, index);
  names_.emplace(name, id);
  return id;
}

MetricsRegistry::Id MetricsRegistry::counter(const std::string& name) {
  return register_named(Kind::kCounter, name);
}
MetricsRegistry::Id MetricsRegistry::gauge(const std::string& name) {
  return register_named(Kind::kGauge, name);
}
MetricsRegistry::Id MetricsRegistry::max_gauge(const std::string& name) {
  return register_named(Kind::kMaxGauge, name);
}
MetricsRegistry::Id MetricsRegistry::histogram(const std::string& name) {
  return register_named(Kind::kHistogram, name);
}

MetricsRegistry::Shard& MetricsRegistry::local_shard() {
  // One shard per (thread, registry). The shared_ptr keeps a shard alive
  // even if its thread exits before a later snapshot reads it.
  thread_local std::map<std::uint64_t, std::shared_ptr<Shard>> shards;
  auto it = shards.find(uid_);
  if (it == shards.end()) {
    auto shard = std::make_shared<Shard>();
    {
      std::lock_guard<std::mutex> lock(mu_);
      shards_.push_back(shard);
    }
    it = shards.emplace(uid_, std::move(shard)).first;
  }
  return *it->second;
}

void MetricsRegistry::add(Id id, std::uint64_t delta) {
  POLIS_DCHECK(kind_of(id) == Kind::kCounter);
  local_shard().counters[index_of(id)].fetch_add(delta,
                                                 std::memory_order_relaxed);
}

void MetricsRegistry::set(Id id, std::int64_t value) {
  GaugeCell& cell = local_shard().gauges[index_of(id)];
  if (kind_of(id) == Kind::kMaxGauge) {
    // Monotone-max merge; seq only marks "written at least once".
    std::int64_t seen = cell.value.load(std::memory_order_relaxed);
    while (value > seen &&
           !cell.value.compare_exchange_weak(seen, value,
                                             std::memory_order_relaxed)) {
    }
    cell.seq.store(1, std::memory_order_relaxed);
    return;
  }
  POLIS_DCHECK(kind_of(id) == Kind::kGauge);
  cell.value.store(value, std::memory_order_relaxed);
  cell.seq.store(1 + gauge_seq_.fetch_add(1, std::memory_order_relaxed),
                 std::memory_order_relaxed);
}

void MetricsRegistry::observe(Id id, std::uint64_t value) {
  POLIS_DCHECK(kind_of(id) == Kind::kHistogram);
  HistogramCells& h = local_shard().histograms[index_of(id)];
  h.count.fetch_add(1, std::memory_order_relaxed);
  h.sum.fetch_add(value, std::memory_order_relaxed);
  h.buckets[static_cast<size_t>(bucket_of(value))].fetch_add(
      1, std::memory_order_relaxed);
}

MetricsRegistry::Snapshot MetricsRegistry::snapshot() const {
  std::map<std::string, Id> names;
  std::vector<std::shared_ptr<Shard>> shards;
  {
    std::lock_guard<std::mutex> lock(mu_);
    names = names_;
    shards = shards_;
  }
  Snapshot snap;
  for (const auto& [name, id] : names) {
    const std::uint32_t index = index_of(id);
    switch (kind_of(id)) {
      case Kind::kCounter: {
        std::uint64_t total = 0;
        for (const auto& s : shards)
          total += s->counters[index].load(std::memory_order_relaxed);
        snap.counters[name] = total;
        break;
      }
      case Kind::kGauge: {
        std::uint64_t best_seq = 0;
        std::int64_t value = 0;
        for (const auto& s : shards) {
          const std::uint64_t seq =
              s->gauges[index].seq.load(std::memory_order_relaxed);
          if (seq > best_seq) {
            best_seq = seq;
            value = s->gauges[index].value.load(std::memory_order_relaxed);
          }
        }
        if (best_seq > 0) snap.gauges[name] = value;
        break;
      }
      case Kind::kMaxGauge: {
        bool written = false;
        std::int64_t best = 0;
        for (const auto& s : shards) {
          if (s->gauges[index].seq.load(std::memory_order_relaxed) == 0)
            continue;
          const std::int64_t v =
              s->gauges[index].value.load(std::memory_order_relaxed);
          if (!written || v > best) best = v;
          written = true;
        }
        if (written) snap.gauges[name] = best;
        break;
      }
      case Kind::kHistogram: {
        HistogramView view;
        for (const auto& s : shards) {
          const HistogramCells& h = s->histograms[index];
          view.count += h.count.load(std::memory_order_relaxed);
          view.sum += h.sum.load(std::memory_order_relaxed);
          for (int b = 0; b < kBuckets; ++b)
            view.buckets[static_cast<size_t>(b)] +=
                h.buckets[static_cast<size_t>(b)].load(
                    std::memory_order_relaxed);
        }
        snap.histograms[name] = view;
        break;
      }
    }
  }
  return snap;
}

void MetricsRegistry::reset() {
  std::vector<std::shared_ptr<Shard>> shards;
  {
    std::lock_guard<std::mutex> lock(mu_);
    shards = shards_;
    gauge_seq_.store(0, std::memory_order_relaxed);
  }
  for (const auto& s : shards) {
    for (auto& c : s->counters) c.store(0, std::memory_order_relaxed);
    for (auto& g : s->gauges) {
      g.seq.store(0, std::memory_order_relaxed);
      g.value.store(0, std::memory_order_relaxed);
    }
    for (auto& h : s->histograms) {
      h.count.store(0, std::memory_order_relaxed);
      h.sum.store(0, std::memory_order_relaxed);
      for (auto& b : h.buckets) b.store(0, std::memory_order_relaxed);
    }
  }
}

void MetricsRegistry::write_json(std::ostream& os) const {
  const Snapshot snap = snapshot();
  os << "{\n  \"counters\": {";
  bool first = true;
  for (const auto& [name, value] : snap.counters) {
    os << (first ? "" : ",") << "\n    \"" << json::escape(name)
       << "\": " << value;
    first = false;
  }
  os << "\n  },\n  \"gauges\": {";
  first = true;
  for (const auto& [name, value] : snap.gauges) {
    os << (first ? "" : ",") << "\n    \"" << json::escape(name)
       << "\": " << value;
    first = false;
  }
  os << "\n  },\n  \"histograms\": {";
  first = true;
  for (const auto& [name, h] : snap.histograms) {
    os << (first ? "" : ",") << "\n    \"" << json::escape(name)
       << "\": { \"count\": " << h.count << ", \"sum\": " << h.sum
       << ", \"buckets\": [";
    bool fb = true;
    for (int b = 0; b < kBuckets; ++b) {
      const std::uint64_t n = h.buckets[static_cast<size_t>(b)];
      if (n == 0) continue;
      os << (fb ? "" : ", ") << "[" << bucket_lo(b) << ", " << bucket_hi(b)
         << ", " << n << "]";
      fb = false;
    }
    os << "] }";
    first = false;
  }
  os << "\n  },\n  \"derived\": {";
  first = true;
  auto ratio = [&](const char* name, const char* num, const char* den) {
    auto n = snap.counters.find(num);
    auto d = snap.counters.find(den);
    if (n == snap.counters.end() || d == snap.counters.end() ||
        d->second == 0)
      return;
    os << (first ? "" : ",") << "\n    \"" << name << "\": "
       << static_cast<double>(n->second) / static_cast<double>(d->second);
    first = false;
  };
  ratio("bdd.cache_hit_rate", "bdd.cache_hits", "bdd.cache_lookups");
  ratio("bdd.unique_hit_rate", "bdd.unique_hits", "bdd.unique_lookups");
  // Histogram means from the exact merged sums carried through snapshot() —
  // never reconstructed from bucket midpoints, which would be off by up to
  // the bucket's relative error.
  for (const auto& [name, h] : snap.histograms) {
    if (h.count == 0) continue;
    os << (first ? "" : ",") << "\n    \"" << json::escape(name + "_avg")
       << "\": " << static_cast<double>(h.sum) / static_cast<double>(h.count);
    first = false;
  }
  os << "\n  }\n}\n";
}

}  // namespace polis::obs
