#include "obs/obs.hpp"

#include <cstdio>
#include <ostream>
#include <sstream>

#include "obs/json.hpp"

namespace polis::obs {

void write_metrics_json(std::ostream& os, const MetricsRegistry& registry,
                        const TraceRecorder* recorder) {
  // Render the registry body, then splice the phase table in before the
  // closing brace so both land in one document.
  std::ostringstream body;
  registry.write_json(body);
  std::string text = body.str();
  const size_t close = text.rfind('}');
  if (close != std::string::npos) text.resize(close);
  os << text << ",\n  \"phases\": {";
  bool first = true;
  if (recorder != nullptr) {
    for (const auto& [name, ms] : recorder->span_totals_ms()) {
      char buf[64];
      std::snprintf(buf, sizeof(buf), "%.6g", ms);
      os << (first ? "" : ",") << "\n    \"" << json::escape(name)
         << "\": " << buf;
      first = false;
    }
  }
  os << "\n  }\n}\n";
}

}  // namespace polis::obs
