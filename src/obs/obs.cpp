#include "obs/obs.hpp"

#include <cstdio>
#include <ostream>
#include <sstream>

#include "obs/json.hpp"
#include "obs/series.hpp"

namespace polis::obs {

void write_metrics_json(std::ostream& os, const MetricsRegistry& registry,
                        const TraceRecorder* recorder) {
  // Render the registry body, then splice the quantile summaries and phase
  // table in before the closing brace so all land in one document.
  std::ostringstream body;
  registry.write_json(body);
  std::string text = body.str();
  const size_t close = text.rfind('}');
  if (close != std::string::npos) text.resize(close);
  os << text << ",\n  \"quantiles\": {";
  bool first_q = true;
  for (const auto& [name, h] : registry.snapshot().histograms) {
    if (h.count == 0) continue;
    const QuantileSketch sk = QuantileSketch::from_histogram(h);
    os << (first_q ? "" : ",") << "\n    \"" << json::escape(name)
       << "\": { \"count\": " << h.count << ", \"sum\": " << h.sum
       << ", \"p50\": " << sk.quantile(0.5) << ", \"p90\": " << sk.quantile(0.9)
       << ", \"p99\": " << sk.quantile(0.99) << " }";
    first_q = false;
  }
  os << "\n  },\n  \"phases\": {";
  bool first = true;
  if (recorder != nullptr) {
    for (const auto& [name, ms] : recorder->span_totals_ms()) {
      char buf[64];
      std::snprintf(buf, sizeof(buf), "%.6g", ms);
      os << (first ? "" : ",") << "\n    \"" << json::escape(name)
         << "\": " << buf;
      first = false;
    }
  }
  os << "\n  }\n}\n";
}

}  // namespace polis::obs
