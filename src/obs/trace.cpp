#include "obs/trace.hpp"

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <ostream>

#include "obs/json.hpp"

namespace polis::obs {

std::atomic<std::uint64_t> TraceRecorder::next_uid_{1};

std::int64_t now_us() {
  static const std::chrono::steady_clock::time_point epoch =
      std::chrono::steady_clock::now();
  return std::chrono::duration_cast<std::chrono::microseconds>(
             std::chrono::steady_clock::now() - epoch)
      .count();
}

std::uint32_t this_thread_id() {
  static std::atomic<std::uint32_t> next{1};
  thread_local const std::uint32_t id = next.fetch_add(1);
  return id;
}

TraceRecorder& TraceRecorder::global() {
  static TraceRecorder* recorder = new TraceRecorder();  // never destroyed
  return *recorder;
}

TraceRecorder::Buffer& TraceRecorder::local_buffer() {
  thread_local std::map<std::uint64_t, std::shared_ptr<Buffer>> buffers;
  auto it = buffers.find(uid_);
  if (it == buffers.end()) {
    auto buffer = std::make_shared<Buffer>();
    {
      std::lock_guard<std::mutex> lock(mu_);
      buffers_.push_back(buffer);
    }
    it = buffers.emplace(uid_, std::move(buffer)).first;
  }
  return *it->second;
}

void TraceRecorder::record(TraceEvent event) {
  if (!enabled()) return;
  if (event.tid == 0 && event.pid == kPidPipeline)
    event.tid = this_thread_id();
  Buffer& buffer = local_buffer();
  std::lock_guard<std::mutex> lock(buffer.mu);
  buffer.events.push_back(std::move(event));
}

void TraceRecorder::name_this_thread(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  lane_names_[{kPidPipeline, this_thread_id()}] = name;
}

void TraceRecorder::name_sim_lane(std::uint32_t tid, const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  lane_names_[{kPidSim, tid}] = name;
}

void TraceRecorder::clear() {
  std::vector<std::shared_ptr<Buffer>> buffers;
  {
    std::lock_guard<std::mutex> lock(mu_);
    buffers = buffers_;
  }
  for (const auto& b : buffers) {
    std::lock_guard<std::mutex> lock(b->mu);
    b->events.clear();
  }
}

std::vector<TraceEvent> TraceRecorder::collect() const {
  std::vector<std::shared_ptr<Buffer>> buffers;
  std::map<std::pair<int, std::uint32_t>, std::string> lane_names;
  {
    std::lock_guard<std::mutex> lock(mu_);
    buffers = buffers_;
    lane_names = lane_names_;
  }
  std::vector<TraceEvent> events;
  for (const auto& [lane, name] : lane_names) {
    TraceEvent meta;
    meta.name = "thread_name";
    meta.cat = "__metadata";
    meta.ph = 'M';
    meta.pid = lane.first;
    meta.tid = lane.second;
    meta.args.push_back({"name", "\"" + json::escape(name) + "\""});
    events.push_back(std::move(meta));
  }
  for (int pid : {kPidPipeline, kPidSim}) {
    TraceEvent meta;
    meta.name = "process_name";
    meta.cat = "__metadata";
    meta.ph = 'M';
    meta.pid = pid;
    meta.args.push_back(
        {"name", pid == kPidPipeline
                     ? "\"synthesis pipeline (wall clock, us)\""
                     : "\"rtos simulator (cycles)\""});
    events.push_back(std::move(meta));
  }
  const size_t header = events.size();
  for (const auto& b : buffers) {
    std::lock_guard<std::mutex> lock(b->mu);
    events.insert(events.end(), b->events.begin(), b->events.end());
  }
  std::stable_sort(events.begin() + static_cast<std::ptrdiff_t>(header),
                   events.end(),
                   [](const TraceEvent& a, const TraceEvent& b) {
                     if (a.pid != b.pid) return a.pid < b.pid;
                     return a.ts < b.ts;
                   });
  return events;
}

void TraceRecorder::write_chrome_json(std::ostream& os) const {
  const std::vector<TraceEvent> events = collect();
  os << "{\n\"traceEvents\": [";
  bool first = true;
  for (const TraceEvent& e : events) {
    os << (first ? "" : ",") << "\n{\"name\":\"" << json::escape(e.name)
       << "\",\"cat\":\"" << json::escape(e.cat) << "\",\"ph\":\"" << e.ph
       << "\",\"ts\":" << e.ts;
    if (e.ph == 'X') os << ",\"dur\":" << e.dur;
    if (e.ph == 'i') os << ",\"s\":\"t\"";
    os << ",\"pid\":" << e.pid << ",\"tid\":" << e.tid;
    if (!e.args.empty()) {
      os << ",\"args\":{";
      for (size_t i = 0; i < e.args.size(); ++i)
        os << (i == 0 ? "" : ",") << "\"" << json::escape(e.args[i].key)
           << "\":" << e.args[i].value;
      os << "}";
    }
    os << "}";
    first = false;
  }
  os << "\n],\n\"displayTimeUnit\": \"ms\"\n}\n";
}

std::map<std::string, double> TraceRecorder::span_totals_ms(int pid) const {
  std::map<std::string, double> totals;
  for (const TraceEvent& e : collect()) {
    if (e.ph != 'X' || e.pid != pid) continue;
    totals[e.name] += static_cast<double>(e.dur) / 1000.0;
  }
  return totals;
}

// --- Span ---------------------------------------------------------------------

Span::Span(TraceRecorder& recorder, const char* name, const char* cat) {
  if (!recorder.enabled()) return;
  recorder_ = &recorder;
  event_.name = name;
  event_.cat = cat;
  start_ = now_us();
}

Span::Span(TraceRecorder& recorder, std::string name, const char* cat) {
  if (!recorder.enabled()) return;
  recorder_ = &recorder;
  event_.name = std::move(name);
  event_.cat = cat;
  start_ = now_us();
}

Span::~Span() {
  if (recorder_ == nullptr) return;
  const std::int64_t end = now_us();
  const std::int64_t dur = end - start_;
  if (dur < recorder_->min_span_us()) return;
  event_.ph = 'X';
  event_.ts = start_;
  event_.dur = dur;
  event_.pid = kPidPipeline;
  recorder_->record(std::move(event_));
}

void Span::arg(const char* key, std::int64_t value) {
  if (recorder_ == nullptr) return;
  event_.args.push_back({key, std::to_string(value)});
}

void Span::arg(const char* key, std::uint64_t value) {
  if (recorder_ == nullptr) return;
  event_.args.push_back({key, std::to_string(value)});
}

void Span::arg(const char* key, double value) {
  if (recorder_ == nullptr) return;
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.6g", value);
  event_.args.push_back({key, buf});
}

void Span::arg(const char* key, bool value) {
  if (recorder_ == nullptr) return;
  event_.args.push_back({key, value ? "true" : "false"});
}

void Span::arg(const char* key, const std::string& value) {
  if (recorder_ == nullptr) return;
  event_.args.push_back({key, "\"" + json::escape(value) + "\""});
}

void Span::arg(const char* key, const char* value) {
  arg(key, std::string(value));
}

// --- Free helpers --------------------------------------------------------------

void trace_instant(std::string name, const char* cat) {
  TraceRecorder& recorder = TraceRecorder::global();
  if (!recorder.enabled()) return;
  TraceEvent e;
  e.name = std::move(name);
  e.cat = cat;
  e.ph = 'i';
  e.ts = now_us();
  recorder.record(std::move(e));
}

void trace_complete_at(int pid, std::uint32_t tid, std::string name,
                       const char* cat, std::int64_t ts, std::int64_t dur,
                       std::vector<TraceArg> args) {
  TraceRecorder& recorder = TraceRecorder::global();
  if (!recorder.enabled()) return;
  TraceEvent e;
  e.name = std::move(name);
  e.cat = cat;
  e.ph = 'X';
  e.ts = ts;
  e.dur = dur;
  e.pid = pid;
  e.tid = tid;
  e.args = std::move(args);
  recorder.record(std::move(e));
}

void trace_instant_at(int pid, std::uint32_t tid, std::string name,
                      const char* cat, std::int64_t ts,
                      std::vector<TraceArg> args) {
  TraceRecorder& recorder = TraceRecorder::global();
  if (!recorder.enabled()) return;
  TraceEvent e;
  e.name = std::move(name);
  e.cat = cat;
  e.ph = 'i';
  e.ts = ts;
  e.pid = pid;
  e.tid = tid;
  e.args = std::move(args);
  recorder.record(std::move(e));
}

}  // namespace polis::obs
